"""Log records.

Records are the log layer's crash-recovery mechanism. They are written
atomically, their order in the log is preserved, and after a crash they
are replayed to the service that wrote them so it can redo (or undo)
in-flight operations. The log layer automatically writes CREATE and
DELETE records as blocks are created and deleted; services append their
own opaque record types on top; the log layer itself adds CHECKPOINT
and CHECKPOINT_TABLE records when services checkpoint.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Tuple

from repro.log.address import BlockAddress
from repro.util.packing import pack_bytes, unpack_bytes

SERVICE_LOG_LAYER = 0
"""Reserved service id for records created by the log layer itself."""


class RecordType(IntEnum):
    """Well-known record types. Values >= ``USER_BASE`` are service-defined."""

    CREATE = 1            # log layer: a block was created
    DELETE = 2            # log layer: a block was deleted
    CHECKPOINT = 3        # log layer: a service checkpoint payload
    CHECKPOINT_TABLE = 4  # log layer: latest checkpoint address per service
    VIEW_CHANGE = 5       # log layer: full placement view history
    USER_BASE = 64        # first record type available to services


@dataclass(frozen=True)
class Record:
    """One log record.

    Attributes
    ----------
    lsn:
        Log sequence number: per-client, strictly increasing across all
        records in the log. Replay order is LSN order.
    service_id:
        The service this record belongs to (0 = log layer).
    rtype:
        Record type; opaque to the log layer when >= ``USER_BASE``.
    payload:
        Uninterpreted bytes (except for the log layer's own types).
    """

    lsn: int
    service_id: int
    rtype: int
    payload: bytes

    def encode(self) -> bytes:
        """Serialize the record for inclusion in a fragment.

        The wire image is cached on first use: the append path needs it
        twice (once to size the fragment, once to copy it in), and a
        record is immutable, so encoding twice is pure waste.
        """
        cached = self.__dict__.get("_wire")
        if cached is None:
            cached = (struct.pack(">QIH", self.lsn, self.service_id,
                                  self.rtype) + pack_bytes(self.payload))
            object.__setattr__(self, "_wire", cached)
        return cached

    @classmethod
    def decode(cls, buf: bytes, offset: int) -> Tuple["Record", int]:
        """Parse a record from ``buf`` at ``offset``; return it and the
        offset just past it."""
        lsn, service_id, rtype = struct.unpack_from(">QIH", buf, offset)
        payload, end = unpack_bytes(buf, offset + 14)
        return cls(lsn, service_id, rtype, payload), end


# ---------------------------------------------------------------------------
# Payload helpers for the log layer's own record types
# ---------------------------------------------------------------------------

_ADDR = struct.Struct(">QII")


def encode_record_payload_block(addr: BlockAddress, owner_service: int,
                                create_info: bytes) -> bytes:
    """Payload of CREATE / DELETE records.

    Carries the block's address, the owning service, and the service-
    specific ``create_info`` (e.g. a file system stores the inode number
    and file offset here, so the cleaner's move notifications and replay
    can find the block in the service's metadata).
    """
    return (_ADDR.pack(addr.fid, addr.offset, addr.length)
            + struct.pack(">I", owner_service)
            + pack_bytes(create_info))


def decode_record_payload_block(payload: bytes) -> Tuple[BlockAddress, int, bytes]:
    """Inverse of :func:`encode_record_payload_block`."""
    fid, offset, length = _ADDR.unpack_from(payload, 0)
    (owner,) = struct.unpack_from(">I", payload, _ADDR.size)
    info, _ = unpack_bytes(payload, _ADDR.size + 4)
    return BlockAddress(fid, offset, length), owner, info


def encode_checkpoint_payload(service_id: int, state: bytes) -> bytes:
    """Payload of a CHECKPOINT record: the owning service and its state."""
    return struct.pack(">I", service_id) + pack_bytes(state)


def decode_checkpoint_payload(payload: bytes) -> Tuple[int, bytes]:
    """Inverse of :func:`encode_checkpoint_payload`."""
    (service_id,) = struct.unpack_from(">I", payload, 0)
    state, _ = unpack_bytes(payload, 4)
    return service_id, state


_TABLE_ENTRY = struct.Struct(">IQIIQ")


def encode_checkpoint_table(table: Dict[int, Tuple[BlockAddress, int]]) -> bytes:
    """Payload of a CHECKPOINT_TABLE record.

    Maps every service id to the address of its most recent CHECKPOINT
    record and that record's LSN. Written into the same marked fragment
    as each new checkpoint, so finding the newest marked fragment is
    enough to locate *every* service's checkpoint during recovery.
    """
    out = [struct.pack(">I", len(table))]
    for service_id in sorted(table):
        addr, lsn = table[service_id]
        out.append(_TABLE_ENTRY.pack(service_id, addr.fid, addr.offset,
                                     addr.length, lsn))
    return b"".join(out)


def decode_checkpoint_table(payload: bytes) -> Dict[int, Tuple[BlockAddress, int]]:
    """Inverse of :func:`encode_checkpoint_table`."""
    (count,) = struct.unpack_from(">I", payload, 0)
    table: Dict[int, Tuple[BlockAddress, int]] = {}
    pos = 4
    for _ in range(count):
        service_id, fid, offset, length, lsn = _TABLE_ENTRY.unpack_from(payload, pos)
        table[service_id] = (BlockAddress(fid, offset, length), lsn)
        pos += _TABLE_ENTRY.size
    return table
