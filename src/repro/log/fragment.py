"""Fragment format: the unit of striping and storage.

The log is stored in fixed-capacity fragments (1 MB in the prototype).
A fragment image is a fixed-size header followed by a payload of *items*
(blocks and records). The header embeds the fragment's complete stripe
descriptor — stripe base FID, width, this fragment's index, and the
server that holds each sibling — which is what makes client-side
reconstruction possible without any central metadata: any one surviving
fragment of a stripe names all the others.

The header has constant size so that block offsets can be handed back to
services *at append time*, before the stripe is sealed; the stripe
descriptor fields are patched in when the stripe closes. Parity
fragments carry the XOR of their siblings' entire images (zero-padded to
equal length) as payload, so reconstruction yields a complete, parseable
fragment image.

Zero-copy invariants (who owns what):

* A :class:`FragmentBuilder` accumulates items directly into one
  preallocated buffer with the header region in place, so sealing
  patches the header in with a ``memoryview`` and materializes the
  complete image **exactly once**. No ``header + payload``
  concatenation happens on the write path.
* :meth:`Fragment.decode` keeps the caller's image and serves
  ``payload`` (and block item data) as ``memoryview`` slices of it —
  readers that only parse, XOR, or re-store images never copy them.
  Record payloads are always materialized as owned ``bytes`` (records
  cross into service replay logic and must outlive the image).
* Anything holding a ``memoryview`` must treat it as read-only and may
  call ``bytes()`` to take ownership; trust boundaries (the storage
  server's backend and cache) always do.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import CorruptFragmentError
from repro.log.records import Record
from repro.util.checksums import crc32_of

MAGIC = b"SWFR"
VERSION = 1

MAX_STRIPE_WIDTH = 16
_SERVER_NAME_LEN = 16

FLAG_PARITY = 1 << 0
FLAG_MARKED = 1 << 1

NO_PARITY = 0xFFFF
"""Sentinel ``parity_index`` for stripes written without redundancy
(single-server stripe groups)."""

_FIXED = struct.Struct(">4sHHQIQHHHIIQQI")
HEADER_SIZE = _FIXED.size + MAX_STRIPE_WIDTH * _SERVER_NAME_LEN + 4

ITEM_BLOCK = 1
ITEM_RECORD = 2
_ITEM_HEAD = struct.Struct(">BI")
_BLOCK_OWNER = struct.Struct(">I")

BLOCK_ITEM_OVERHEAD = _ITEM_HEAD.size + _BLOCK_OWNER.size
"""Bytes of framing added around each block's data."""


@dataclass(frozen=True)
class FragmentHeader:
    """Parsed fragment header (see module docstring for the layout)."""

    fid: int
    client_id: int
    is_parity: bool
    marked: bool
    stripe_base_fid: int
    stripe_width: int
    stripe_index: int
    parity_index: int
    payload_len: int
    item_count: int
    first_lsn: int
    last_lsn: int
    servers: Tuple[str, ...]
    payload_crc: int = 0
    """CRC-32 of the payload bytes (0 on images written before the field
    existed). The header checksum covers this field, so an end-to-end
    read can detect silent payload corruption — a flipped bit anywhere
    in the image fails either the header CRC or this one."""

    def server_of_index(self, index: int) -> str:
        """Name of the server holding stripe member ``index``."""
        return self.servers[index]

    def sibling_fids(self) -> List[int]:
        """FIDs of every fragment in this stripe, in stripe order."""
        return [self.stripe_base_fid + i for i in range(self.stripe_width)]

    def encode(self) -> bytes:
        """Serialize the header to its fixed-size binary form."""
        flags = (FLAG_PARITY if self.is_parity else 0) | \
                (FLAG_MARKED if self.marked else 0)
        fixed = _FIXED.pack(
            MAGIC, VERSION, flags, self.fid, self.client_id,
            self.stripe_base_fid, self.stripe_width, self.stripe_index,
            self.parity_index, self.payload_len, self.item_count,
            self.first_lsn, self.last_lsn, self.payload_crc)
        names = bytearray(MAX_STRIPE_WIDTH * _SERVER_NAME_LEN)
        for i, name in enumerate(self.servers):
            raw = name.encode("utf-8")
            if len(raw) > _SERVER_NAME_LEN:
                raise ValueError("server name too long: %r" % name)
            names[i * _SERVER_NAME_LEN:i * _SERVER_NAME_LEN + len(raw)] = raw
        body = fixed + bytes(names)
        return body + struct.pack(">I", crc32_of(body))

    @classmethod
    def decode(cls, image) -> "FragmentHeader":
        """Parse and validate a header from the start of ``image``.

        Accepts any bytes-like object (``bytes``, ``bytearray``,
        ``memoryview``) without copying it.
        """
        if len(image) < HEADER_SIZE:
            raise CorruptFragmentError("image shorter than fragment header")
        view = image if isinstance(image, memoryview) else memoryview(image)
        body = view[:HEADER_SIZE - 4]
        (stored_crc,) = struct.unpack_from(">I", view, HEADER_SIZE - 4)
        if crc32_of(body) != stored_crc:
            raise CorruptFragmentError("fragment header checksum mismatch")
        (magic, version, flags, fid, client_id, base, width, index,
         parity_index, payload_len, item_count, first_lsn, last_lsn,
         payload_crc) = _FIXED.unpack_from(view, 0)
        if magic != MAGIC:
            raise CorruptFragmentError("bad fragment magic %r" % magic)
        if version != VERSION:
            raise CorruptFragmentError("unsupported fragment version %d" % version)
        servers: List[str] = []
        pos = _FIXED.size
        for i in range(width):
            raw = bytes(view[pos + i * _SERVER_NAME_LEN:
                             pos + (i + 1) * _SERVER_NAME_LEN])
            servers.append(raw.rstrip(b"\x00").decode("utf-8"))
        return cls(
            fid=fid, client_id=client_id,
            is_parity=bool(flags & FLAG_PARITY),
            marked=bool(flags & FLAG_MARKED),
            stripe_base_fid=base, stripe_width=width, stripe_index=index,
            parity_index=parity_index, payload_len=payload_len,
            item_count=item_count, first_lsn=first_lsn, last_lsn=last_lsn,
            servers=tuple(servers), payload_crc=payload_crc)


@dataclass(frozen=True)
class LogItem:
    """One parsed payload item: a block or a record.

    For blocks, ``data_offset`` is the absolute offset of the block data
    within the fragment image — i.e. the ``offset`` field of the block's
    :class:`~repro.log.address.BlockAddress`. ``data`` is a read-only
    slice of the fragment image (a ``memoryview`` on the zero-copy
    decode path); callers keeping it past the image's lifetime take
    ``bytes()`` ownership.
    """

    kind: int
    owner_service: int
    data: bytes
    record: Optional[Record]
    data_offset: int


class Fragment:
    """An immutable, sealed fragment: header plus payload bytes.

    ``payload`` may be owned ``bytes`` or a read-only ``memoryview``
    into a complete image (the zero-copy decode path). When the full
    image is already materialized it is passed as ``image`` so
    :meth:`encode` can return it without re-assembling anything.
    """

    def __init__(self, header: FragmentHeader, payload,
                 image: Optional[bytes] = None) -> None:
        if header.payload_len != len(payload):
            raise ValueError("header payload_len disagrees with payload")
        self.header = header
        self.payload = payload
        self._image = image

    @property
    def fid(self) -> int:
        """This fragment's identifier."""
        return self.header.fid

    def encode(self) -> bytes:
        """The complete fragment image (header + payload).

        Free when the fragment was sealed or decoded from an image;
        assembled (once, then cached) otherwise.
        """
        if self._image is None:
            self._image = self.header.encode() + bytes(self.payload)
        return self._image

    @classmethod
    def decode(cls, image, verify_payload: bool = False,
               verify_crc: bool = False) -> "Fragment":
        """Parse a fragment image (any bytes-like object).

        ``verify_payload`` walks the items to validate structure;
        ``verify_crc`` checks the payload CRC recorded in the header
        (``verify_payload`` implies it). Headers are always
        checksum-verified. The payload is served as a ``memoryview`` of
        ``image`` — no copy is taken.
        """
        header = FragmentHeader.decode(image)
        if len(image) < HEADER_SIZE + header.payload_len:
            raise CorruptFragmentError("image truncated before payload end")
        view = image if isinstance(image, memoryview) else memoryview(image)
        end = HEADER_SIZE + header.payload_len
        payload = view[HEADER_SIZE:end]
        if (verify_crc or verify_payload) and header.payload_crc:
            if crc32_of(payload) != header.payload_crc:
                raise CorruptFragmentError(
                    "fragment %d payload checksum mismatch" % header.fid)
        fragment = cls(header, payload, image=image if len(image) == end
                       else view[:end])
        if verify_payload and not header.is_parity:
            count = sum(1 for _ in fragment.items())
            if count != header.item_count:
                raise CorruptFragmentError(
                    "item count mismatch: header says %d, found %d"
                    % (header.item_count, count))
        return fragment

    def items(self) -> Iterator[LogItem]:
        """Iterate the payload's blocks and records in log order."""
        if self.header.is_parity:
            return
        pos = 0
        payload = self.payload
        while pos < len(payload):
            try:
                kind, length = _ITEM_HEAD.unpack_from(payload, pos)
            except struct.error as exc:
                raise CorruptFragmentError("truncated item header") from exc
            body_start = pos + _ITEM_HEAD.size
            body_end = body_start + length
            if body_end > len(payload):
                raise CorruptFragmentError("item body overruns payload")
            if kind == ITEM_BLOCK:
                (owner,) = _BLOCK_OWNER.unpack_from(payload, body_start)
                data_start = body_start + _BLOCK_OWNER.size
                yield LogItem(
                    kind=ITEM_BLOCK, owner_service=owner,
                    data=payload[data_start:body_end], record=None,
                    data_offset=HEADER_SIZE + data_start)
            elif kind == ITEM_RECORD:
                record, _ = Record.decode(payload, body_start)
                yield LogItem(kind=ITEM_RECORD, owner_service=record.service_id,
                              data=b"", record=record,
                              data_offset=HEADER_SIZE + body_start)
            else:
                raise CorruptFragmentError("unknown item kind %d" % kind)
            pos = body_end

    def records(self) -> Iterator[Record]:
        """Iterate only the records, in log order."""
        for item in self.items():
            if item.record is not None:
                yield item.record


class FragmentBuilder:
    """Accumulates blocks and records into one fragment payload.

    ``capacity`` is the total fragment size (header included), matching
    the server's slot size. Stripe descriptor fields are supplied later
    via :meth:`seal`, but block addresses are final as soon as
    :meth:`add_block` returns — the header size is constant.

    The builder preallocates the whole image buffer up front, header
    region included, and writes every item at its final image offset.
    :meth:`seal` therefore only patches the header bytes in place and
    materializes the immutable image in a single copy — the zero-copy
    write path the paper's client-bound bandwidth numbers assume.
    """

    def __init__(self, fid: int, client_id: int, capacity: int) -> None:
        if capacity <= HEADER_SIZE:
            raise ValueError("fragment capacity smaller than header")
        self.fid = fid
        self.client_id = client_id
        self.capacity = capacity
        self.marked = False
        # Set by the log layer once this fragment's payload has been
        # folded into the stripe's running parity accumulator.
        self.parity_folded = False
        # Complete image buffer: header region (patched at seal) plus
        # payload. ``_end`` is the absolute image offset of the next
        # item; bytes at [HEADER_SIZE, _end) never change once written.
        self._buf = bytearray(capacity)
        self._end = HEADER_SIZE
        self._item_count = 0
        self._first_lsn = 0
        self._last_lsn = 0

    # -- capacity queries --------------------------------------------------

    @property
    def payload_used(self) -> int:
        """Bytes of payload appended so far."""
        return self._end - HEADER_SIZE

    @property
    def item_count(self) -> int:
        """Items appended so far."""
        return self._item_count

    def free_payload(self) -> int:
        """Payload bytes still available."""
        return self.capacity - self._end

    def fits_block(self, data_len: int) -> bool:
        """Whether a block with ``data_len`` bytes of data fits."""
        return BLOCK_ITEM_OVERHEAD + data_len <= self.free_payload()

    def fits_record(self, record: Record) -> bool:
        """Whether ``record`` fits."""
        return _ITEM_HEAD.size + len(record.encode()) <= self.free_payload()

    @staticmethod
    def max_block_size(capacity: int) -> int:
        """Largest block data size a fragment of ``capacity`` can hold."""
        return capacity - HEADER_SIZE - BLOCK_ITEM_OVERHEAD

    # -- appends -----------------------------------------------------------

    def add_block(self, owner_service: int, data) -> int:
        """Append a block; return the absolute offset of its data.

        ``data`` may be any bytes-like object; its bytes are copied into
        the image buffer (the one copy every append implies).
        """
        body_len = _BLOCK_OWNER.size + len(data)
        if BLOCK_ITEM_OVERHEAD + len(data) > self.free_payload():
            raise ValueError("block does not fit in fragment")
        buf, pos = self._buf, self._end
        _ITEM_HEAD.pack_into(buf, pos, ITEM_BLOCK, body_len)
        pos += _ITEM_HEAD.size
        _BLOCK_OWNER.pack_into(buf, pos, owner_service)
        pos += _BLOCK_OWNER.size
        data_offset = pos
        buf[pos:pos + len(data)] = data
        self._end = pos + len(data)
        self._item_count += 1
        return data_offset

    def add_record(self, record: Record) -> int:
        """Append a record; return its absolute offset in the image."""
        body = record.encode()
        if _ITEM_HEAD.size + len(body) > self.free_payload():
            raise ValueError("record does not fit in fragment")
        buf, pos = self._buf, self._end
        _ITEM_HEAD.pack_into(buf, pos, ITEM_RECORD, len(body))
        pos += _ITEM_HEAD.size
        offset = pos
        buf[pos:pos + len(body)] = body
        self._end = pos + len(body)
        self._item_count += 1
        if self._first_lsn == 0:
            self._first_lsn = record.lsn
        self._last_lsn = record.lsn
        return offset

    def peek_range(self, offset: int, length: int):
        """Read buffered bytes at image offset ``offset`` (pre-seal).

        Lets the log layer serve reads of not-yet-flushed blocks from
        memory, the way a log-structured file system serves reads from
        its write buffer. Returns a read-only ``memoryview`` of the
        buffer — already-written payload bytes never change, so the
        view stays valid (callers needing ownership take ``bytes()``).
        """
        if offset < HEADER_SIZE or offset + length > self._end:
            raise ValueError("peek outside buffered payload")
        return memoryview(self._buf).toreadonly()[offset:offset + length]

    def buffered_image(self):
        """Read-only view of the accumulated image bytes so far (the
        header region is still zero before :meth:`seal`). This is what
        the incremental-parity accumulator folds when a fragment fills:
        payload bytes never change once written, so the view is final
        for everything below ``payload_used``."""
        return memoryview(self._buf).toreadonly()[:self._end]

    # -- sealing -----------------------------------------------------------

    def seal(self, stripe_base_fid: int, stripe_width: int, stripe_index: int,
             parity_index: int, servers: Tuple[str, ...]) -> Fragment:
        """Finalize the fragment with its stripe descriptor.

        Patches the header into the preallocated buffer and materializes
        the complete image in one copy.
        """
        if len(servers) != stripe_width:
            raise ValueError("stripe descriptor width mismatch")
        with memoryview(self._buf) as view:
            payload_crc = crc32_of(view[HEADER_SIZE:self._end])
        header = FragmentHeader(
            fid=self.fid, client_id=self.client_id, is_parity=False,
            marked=self.marked, stripe_base_fid=stripe_base_fid,
            stripe_width=stripe_width, stripe_index=stripe_index,
            parity_index=parity_index, payload_len=self.payload_used,
            item_count=self._item_count, first_lsn=self._first_lsn,
            last_lsn=self._last_lsn, servers=tuple(servers),
            payload_crc=payload_crc)
        with memoryview(self._buf) as view:
            view[:HEADER_SIZE] = header.encode()
            image = bytes(view[:self._end])
        return Fragment(header, memoryview(image)[HEADER_SIZE:], image=image)


def make_parity_fragment(fid: int, client_id: int, data_images: List[bytes],
                         stripe_base_fid: int, stripe_width: int,
                         stripe_index: int, servers: Tuple[str, ...],
                         payload: Optional[bytes] = None,
                         parity_index: Optional[int] = None) -> Fragment:
    """Build one parity fragment for a stripe.

    With the default single-parity layout the payload is the byte-wise
    XOR of the data fragments' complete images, zero-padded to the
    longest image, so any single missing data fragment's full image can
    be recovered by XOR-ing the parity payload with the surviving
    images. Multi-parity stripes (``coding="rs"``) pass the Reed-Solomon
    slot payload explicitly, plus ``parity_index`` — the stripe index of
    the *first* parity member (data members sit below it). When omitted,
    ``parity_index`` defaults to ``stripe_index``, the single-parity
    convention, which keeps pre-refactor headers bit-identical.

    Callers that kept a running accumulator as the stripe filled (the
    incremental-parity write path) pass the finished ``payload``
    directly; for XOR it must equal ``parity_of_fast(data_images)``.
    """
    from repro.log.stripe import parity_of_fast  # local import to avoid a cycle

    if payload is None:
        payload = parity_of_fast(data_images)
    if parity_index is None:
        parity_index = stripe_index
    header = FragmentHeader(
        fid=fid, client_id=client_id, is_parity=True, marked=False,
        stripe_base_fid=stripe_base_fid, stripe_width=stripe_width,
        stripe_index=stripe_index, parity_index=parity_index,
        payload_len=len(payload), item_count=0, first_lsn=0, last_lsn=0,
        servers=tuple(servers), payload_crc=crc32_of(payload))
    return Fragment(header, payload, image=header.encode() + payload)
