"""The client-side log layer.

Services hand the log layer blocks (opaque data) and records (recovery
metadata); the log layer batches them into fragments, groups fragments
into parity-protected stripes, and writes stripes across the client's
stripe group asynchronously. Everything above this module addresses
data by :class:`~repro.log.address.BlockAddress` and never knows which
server holds what.

Responsibilities, mapped to the paper:

* append-only blocks/records with immediate address assignment (§2.1.1);
* automatic CREATE/DELETE records for crash recovery (§2.1.1);
* striping with rotated client-computed parity (§2.1.2);
* asynchronous, pipelined fragment writes (§2.1.2);
* per-service checkpoints stored in *marked* fragments, plus the
  checkpoint table that makes every service's checkpoint reachable from
  the newest marked fragment (§2.1.3, §2.4.1);
* reads with transparent reconstruction when a server is down (§2.4.3).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    BlockNotFoundError,
    CorruptFragmentError,
    FragmentNotFoundError,
    LogError,
    SwarmError,
)
from repro.log.address import BlockAddress, fid_seq, make_fid
from repro.log.config import LogConfig
from repro.log.fragment import (
    BLOCK_ITEM_OVERHEAD,
    Fragment,
    FragmentBuilder,
    HEADER_SIZE,
    NO_PARITY,
    make_parity_fragment,
)
from repro.log.location import LocationCache
from repro.log.records import (
    Record,
    RecordType,
    SERVICE_LOG_LAYER,
    encode_checkpoint_table,
    encode_record_payload_block,
)
from repro.log.coding import make_engine
from repro.log.stripe import StripeGroup
from repro.rpc import messages as m
from repro.util.idgen import IdGenerator

CostHook = Callable[[str, int], None]
UsageListener = Callable[[str, BlockAddress, int, int, bytes], None]


class StripeTicket:
    """Completion handle for one stripe's dispatched stores.

    The write-behind window counts these: a stripe is *in flight* until
    every one of its store futures has resolved. Stripe tickets compose
    into the :class:`FlushTicket` full barrier — a flush's events are
    exactly the events of every stripe dispatched since the last flush.
    """

    __slots__ = ("events",)

    def __init__(self, events: List) -> None:
        self.events = events

    @property
    def done(self) -> bool:
        """True once every store of this stripe has resolved."""
        return all(event.triggered for event in self.events)


class FlushTicket:
    """Handle for the asynchronous stores one flush started.

    ``events`` are future-like objects (already complete on the local
    transport; simulator processes on the simulated one). Synchronous
    callers use :meth:`wait`; simulated drivers ``yield
    sim.all_of(ticket.events)``.

    ``on_observe`` is the issuing log layer's accounting hook: store
    failures that only become visible once the futures resolve (the
    pipelined write-behind path) are folded into the layer's per-server
    failure counters the moment a caller looks at the ticket.
    """

    def __init__(self, events: List,
                 on_observe: Optional[Callable[[], None]] = None) -> None:
        self.events = events
        self._on_observe = on_observe

    def _observe(self) -> None:
        if self._on_observe is not None:
            self._on_observe()

    def wait(self, allow_degraded: bool = False) -> None:
        """Verify every store finished; raises the first failure.

        With ``allow_degraded`` a flush that lost *some* stores is
        accepted silently — the data in a stripe that lost one member
        is still recoverable through parity; callers inspect
        :meth:`failures` and typically reform the stripe group.

        Only valid once the underlying futures have resolved (always
        true on the local transport).
        """
        for event in self.events:
            if not event.triggered:
                raise LogError("flush not complete; drive the simulator first")
            if event.exception is not None and not allow_degraded:
                self._observe()
                raise event.exception
        self._observe()

    def failures(self) -> List[BaseException]:
        """Exceptions of the stores that failed (empty when clean)."""
        self._observe()
        return [event.exception for event in self.events
                if event.triggered and event.exception is not None]

    @property
    def fragment_count(self) -> int:
        """Number of fragment stores this flush covers."""
        return len(self.events)


class LogLayer:
    """One client's striped log."""

    def __init__(self, transport, group, config: LogConfig,
                 cost_hook: Optional[CostHook] = None,
                 locations: Optional[LocationCache] = None,
                 retry_policy=None, verify_reads: bool = False,
                 health_monitor=None, crash_injector=None,
                 clock=None, retry_sleep=None) -> None:
        from repro.rpc.retry import wrap_transport
        from repro.placement import as_placement

        transport = wrap_transport(transport, retry_policy,
                                   monitor=health_monitor,
                                   sleep=retry_sleep)
        self.transport = transport
        self.verify_reads = verify_reads
        self.config = config
        # Deterministic crash injection (chaos crash-point sweep). With
        # an injector attached every named crash point in the write path
        # fires through it; unarmed it only counts hits.
        self.crash_injector = crash_injector
        # ``group`` may be a StripeGroup (the original API, wrapped in a
        # bit-identical StaticPlacement), a bare server sequence, or a
        # ready-made PlacementPolicy (e.g. SequentialCheckingPlacement
        # over a fleet far wider than any stripe).
        self.placement = as_placement(group, config)
        # The erasure-coding engine for the placement's effective parity
        # count (None when stripes carry no redundancy). Rebuilt on
        # reform: a shrunken view may clamp the parity count.
        self._engine = make_engine(config.coding,
                                   self.placement.parity_fragments)
        self.cost_hook = cost_hook or (lambda kind, n: None)
        self._seq = IdGenerator(1)
        self._lsn = IdGenerator(1)
        # Stagger stripe rotation by client id so concurrent clients do
        # not advance across the stripe group in lockstep (which would
        # make every client hit the same server at the same moment).
        self._stripe_number = self.placement.initial_stripe_number(
            config.client_id)
        # Fragments of the stripe currently being filled. The last entry
        # is the open builder; earlier entries are full but unsealed
        # (their stripe descriptor is patched at stripe close).
        self._building: List[FragmentBuilder] = []
        self._pending: List = []
        # Running parity of the open stripe's data images — the coding
        # engine's incremental accumulator (None when the group has no
        # parity member, or mid-stripe after recovery).
        self._parity_acc = None
        # Write-behind: stripes whose stores are still in flight, oldest
        # first, bounded by config.max_inflight_stripes.
        self._inflight: List[StripeTicket] = []
        # Stores dispatched while unresolved; their outcomes are folded
        # into the failure counters when the futures resolve.
        self._store_ledger: List[Tuple[str, object]] = []
        # Group commit: small service records waiting to hit a builder.
        self._record_batch: List[Record] = []
        self._record_batch_bytes = 0
        # Adaptive group commit: when the batch opened, by self._clock.
        # The clock is pluggable so sim-driven tests can advance it
        # deterministically; real clients get the wall clock.
        self._clock = clock if clock is not None else time.monotonic
        self._record_batch_opened: Optional[float] = None
        # Fragment placements: shared with the reconstructor (and, when
        # the caller passes one in, with readers/recovery/fsck too).
        self.locations = locations if locations is not None else \
            LocationCache(transport, config.principal,
                          max_entries=config.location_cache_entries)
        self._checkpoint_table: Dict[int, Tuple[BlockAddress, int]] = {}
        self._usage_listeners: List[UsageListener] = []
        # Self-healing: the failure detector pushes verdicts; a `dead`
        # member triggers an automatic reform onto a spare.
        self.monitor = health_monitor
        self.reforms: List[Dict[str, object]] = []
        if health_monitor is not None:
            health_monitor.on_transition(self._on_health_transition)
        # Statistics.
        self.raw_bytes_written = 0
        self.useful_bytes_written = 0
        self.stripes_written = 0
        self.preallocate_failures = 0
        self.delete_failures = 0
        self.group_commit_batches = 0
        self.group_commit_timeouts = 0
        self.records_coalesced = 0
        self._failures_by_server: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def group(self):
        """The servers the *next* stripe rotates over: the placement's
        current view (a real :class:`StripeGroup` under static
        placement, a :class:`~repro.placement.PlacementView` otherwise —
        both expose ``.servers`` and ``.size``)."""
        return self.placement.group

    @property
    def layout(self):
        """Stripe-geometry interface (``width_for``,
        ``max_data_fragments``, ``servers_for_stripe``, ...): the
        placement policy itself. Kept as a property for the callers
        that consumed the old ``StripeLayout`` attribute."""
        return self.placement

    @property
    def next_lsn(self) -> int:
        """LSN the next record will get."""
        return self._lsn.peek()

    @property
    def next_stripe_number(self) -> int:
        """Stripe sequence number the next closed stripe will get.

        With a sequential-checking placement this is the rotation
        cursor into the current view: the next stripe lands on
        ``placement.servers_for_stripe(next_stripe_number, width)``.
        """
        return self._stripe_number

    @property
    def checkpoint_table(self) -> Dict[int, Tuple[BlockAddress, int]]:
        """Latest known checkpoint address and LSN per service."""
        return dict(self._checkpoint_table)

    def pending_events(self) -> List:
        """Futures of fragment stores dispatched but not yet claimed by a
        flush ticket. Simulated drivers use this for flow control."""
        return list(self._pending)

    def inflight_stripes(self) -> int:
        """Stripes whose stores are still in flight (write-behind)."""
        self._inflight = [t for t in self._inflight if not t.done]
        return len(self._inflight)

    def oldest_inflight_events(self) -> List:
        """Unresolved store events of the oldest in-flight stripe.

        Simulated drivers wait on these to enforce the write-behind
        window from inside the simulation, where the log layer itself
        cannot block.
        """
        self._inflight = [t for t in self._inflight if not t.done]
        if not self._inflight:
            return []
        return [e for e in self._inflight[0].events if not e.triggered]

    def buffered_records(self) -> int:
        """Records held by group commit, not yet in any fragment."""
        return len(self._record_batch)

    def known_location(self, fid: int) -> Optional[str]:
        """Server believed to hold ``fid`` (no network traffic)."""
        return self.locations.get(fid)

    def crash_point(self, point: str) -> None:
        """Fire a named crash point (no-op without an injector).

        Hook sites sit at the durability boundaries of the write path;
        an armed :class:`~repro.chaos.crashpoints.CrashInjector` raises
        ``ClientCrash`` here to simulate the client dying mid-flight.
        """
        if self.crash_injector is not None:
            self.crash_injector.hit(point)

    def _count_failure(self, server_id: str, kind: str) -> None:
        per_kind = self._failures_by_server.setdefault(
            server_id, {"stores": 0, "preallocates": 0, "deletes": 0})
        per_kind[kind] += 1

    def _account_store_outcomes(self) -> None:
        """Fold late store outcomes into the per-server failure counters.

        Stores dispatched through the asynchronous path resolve after
        submission; their failures used to vanish (only submit-time
        ``triggered`` futures were counted). Every dispatched store that
        was unresolved at submit time sits in the ledger until its
        future resolves — then a failure is counted exactly once, and
        fed to the failure detector, which the retry wrapper only feeds
        on the synchronous path.
        """
        if not self._store_ledger:
            return
        from repro.rpc.retry import TRANSIENT_ERRORS

        remaining: List[Tuple[str, object]] = []
        for server_id, future in self._store_ledger:
            if not future.triggered:
                remaining.append((server_id, future))
            elif future.exception is not None:
                self._count_failure(server_id, "stores")
                if self.monitor is not None:
                    self.monitor.observe(server_id, ok=not isinstance(
                        future.exception, TRANSIENT_ERRORS))
        self._store_ledger = remaining

    def failures(self) -> Dict[str, Dict[str, int]]:
        """Per-server counts of failed stores/preallocates/deletes.

        Only operations this layer issued; the retry layer's per-attempt
        view (including the retries that eventually succeeded) lives in
        the transport's ``health_report``.
        """
        return {server_id: dict(per_kind)
                for server_id, per_kind in self._failures_by_server.items()}

    def health_report(self) -> Dict[str, object]:
        """One structured health snapshot for monitors and tests.

        Merges this layer's per-server failure counters with the
        retrying transport's per-server attempt outcomes and — when a
        failure detector is attached — its verdicts, so every consumer
        reads the same numbers instead of scraping ad-hoc attributes.
        """
        report: Dict[str, object] = {
            "log": {
                "stripes_written": self.stripes_written,
                "preallocate_failures": self.preallocate_failures,
                "delete_failures": self.delete_failures,
                "group_commit_batches": self.group_commit_batches,
                "group_commit_timeouts": self.group_commit_timeouts,
                "records_coalesced": self.records_coalesced,
                "inflight_stripes": self.inflight_stripes(),
                "failures_by_server": self.failures(),
                "reforms": [dict(reform) for reform in self.reforms],
                "group": list(self.group.servers),
                "spares_remaining": self.placement.spares_remaining(),
                "placement": self.placement.describe(),
                "locations": self.locations.stats(),
            },
        }
        transport_report = getattr(self.transport, "health_report", None)
        if callable(transport_report):
            report["transport"] = transport_report()
        if self.monitor is not None:
            report["monitor"] = self.monitor.health_report()
        return report

    def add_usage_listener(self, listener: UsageListener) -> None:
        """Subscribe to block lifecycle events.

        The cleaner uses this to maintain its stripe-utilization table
        and its live-block index:
        ``listener(event, addr, size, owner, info)`` with event
        ``"create"`` or ``"delete"``; ``owner`` is the owning service id
        and ``info`` the creation info the owner attached (what a move
        notification hands back).
        """
        self._usage_listeners.append(listener)

    def _notify_usage(self, event: str, addr: BlockAddress, size: int,
                      owner: int, info: bytes) -> None:
        for listener in self._usage_listeners:
            listener(event, addr, size, owner, info)

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------

    def max_block_size(self) -> int:
        """Largest single block the configured fragment size admits."""
        return FragmentBuilder.max_block_size(self.config.fragment_size)

    def write_block(self, owner_service: int, data: bytes,
                    create_info: bytes = b"") -> BlockAddress:
        """Append a block; returns its final address immediately.

        Also appends the automatic CREATE record carrying
        ``create_info`` — the service-specific hint (inode number, file
        offset, ...) that replay and cleaner notifications hand back to
        the service so it can find the block in its own metadata.
        """
        if len(data) > self.max_block_size():
            raise LogError("block of %d bytes exceeds fragment capacity"
                           % len(data))
        self._drain_records()
        # Keep the block and its CREATE record in one fragment whenever
        # they fit together: the cleaner reads a block's creation record
        # from the block's own fragment, so co-location makes move
        # notifications self-contained. Near-fragment-sized blocks fall
        # back to exact fit (the record spills; the cleaner looks ahead).
        record_need = 96 + len(create_info)
        needed = BLOCK_ITEM_OVERHEAD + len(data) + record_need
        if needed > self.config.fragment_size - HEADER_SIZE:
            needed = BLOCK_ITEM_OVERHEAD + len(data)
        builder = self._builder_with_room(needed)
        offset = builder.add_block(owner_service, data)
        addr = BlockAddress(builder.fid, offset, len(data))
        record = Record(self._lsn.next(), SERVICE_LOG_LAYER, RecordType.CREATE,
                        encode_record_payload_block(addr, owner_service,
                                                    create_info))
        self._append_record(record)
        self.cost_hook("copy", len(data))
        self.cost_hook("block_op", 1)
        self.useful_bytes_written += len(data)
        self._notify_usage("create", addr, len(data), owner_service,
                           create_info)
        return addr

    def write_record(self, owner_service: int, rtype: int,
                     payload: bytes) -> Record:
        """Append a service record; returns it (with its LSN assigned).

        Small records ride the group-commit buffer: they are assigned
        their LSN immediately but coalesce client-side until the batch
        reaches ``config.group_commit_bytes`` — or until the next block
        append, checkpoint, or flush, all of which drain the batch
        first, so the physical log keeps its strict LSN order and a
        flush still means "everything before it is durable".
        """
        record = Record(self._lsn.next(), owner_service, rtype, payload)
        threshold = self.config.group_commit_bytes
        if threshold and len(payload) < threshold:
            # A batch left open past the latency bound drains before the
            # new record joins — the new record opens a fresh window, so
            # a trickle of records cannot indefinitely extend one batch.
            self._drain_if_stale()
            if not self._record_batch:
                self._record_batch_opened = self._clock()
            self._record_batch.append(record)
            self._record_batch_bytes += len(record.encode())
            if self._record_batch_bytes >= threshold:
                self._drain_records()
        else:
            self._drain_records()
            self._append_record(record)
        self.cost_hook("copy", len(payload))
        return record

    def delete_block(self, addr: BlockAddress, owner_service: int,
                     create_info: bytes = b"") -> Record:
        """Record the deletion of a block.

        The data bytes stay in place until the cleaner reclaims their
        stripe; the DELETE record makes them dead immediately.
        """
        self._drain_records()
        record = Record(self._lsn.next(), SERVICE_LOG_LAYER, RecordType.DELETE,
                        encode_record_payload_block(addr, owner_service,
                                                    create_info))
        self._append_record(record)
        self._notify_usage("delete", addr, addr.length, owner_service,
                           create_info)
        return record

    def poll_group_commit(self) -> bool:
        """Flush the record batch if it has outlived the latency bound.

        The adaptive half of group commit: staleness is otherwise only
        checked when the *next* record arrives, so a client that goes
        quiet must poll (an event loop tick, a service timer) to get its
        last records moving. Returns True when a batch was drained.
        No-op unless ``config.group_commit_latency_ms`` is set.
        """
        if self._drain_if_stale():
            return True
        return False

    def _drain_if_stale(self) -> bool:
        latency_ms = self.config.group_commit_latency_ms
        if (not latency_ms or not self._record_batch
                or self._record_batch_opened is None):
            return False
        if (self._clock() - self._record_batch_opened) * 1000.0 < latency_ms:
            return False
        self.group_commit_timeouts += 1
        self._drain_records()
        return True

    def _drain_records(self) -> None:
        """Move every group-committed record into the builders, in LSN
        order. One batched walk amortizes the builder-selection work the
        records would otherwise pay one by one."""
        self._record_batch_opened = None
        if not self._record_batch:
            return
        self.crash_point("group_commit_flush")
        batch, self._record_batch = self._record_batch, []
        self._record_batch_bytes = 0
        self.group_commit_batches += 1
        self.records_coalesced += len(batch)
        for record in batch:
            self._append_record(record)

    def _append_record(self, record: Record) -> BlockAddress:
        encoded_len = len(record.encode())
        builder = self._builder_with_room(encoded_len + 16)
        offset = builder.add_record(record)
        return BlockAddress(builder.fid, offset, encoded_len)

    def _builder_with_room(self, needed: int) -> FragmentBuilder:
        if self._building:
            builder = self._building[-1]
            if builder.free_payload() >= needed:
                return builder
            self._advance_fragment()
        else:
            self._open_fragment()
        builder = self._building[-1]
        if builder.free_payload() < needed:
            raise LogError("item of %d bytes cannot fit any fragment" % needed)
        return builder

    def _open_fragment(self) -> None:
        if not self._building and self._engine is not None:
            self._parity_acc = self._engine.make_accumulator()
        fid = make_fid(self.config.client_id, self._seq.next())
        self._building.append(FragmentBuilder(fid, self.config.client_id,
                                              self.config.fragment_size))

    def _advance_fragment(self) -> None:
        """Current fragment is full: open the next one, closing the
        stripe first if it has reached full width."""
        if len(self._building) >= self.layout.max_data_fragments():
            self._close_stripe()
        else:
            self._fold_parity(self._building[-1], len(self._building) - 1)
        self._open_fragment()

    def _fold_parity(self, builder: FragmentBuilder, index: int) -> None:
        """Fold a filled (still unsealed) fragment into the running
        parity accumulator as data member ``index``. The payload region
        is final once written, so it folds the moment the fragment
        fills; the header — only known at seal — folds at stripe close.
        By then every fragment but the open tail has already been
        folded, so the close-time stall shrinks from the whole stripe
        to one fragment."""
        acc = self._parity_acc
        if acc is None or builder.parity_folded or builder.item_count == 0:
            return
        with builder.buffered_image() as view:
            acc.add_range(index, HEADER_SIZE, view[HEADER_SIZE:])
        builder.parity_folded = True

    # ------------------------------------------------------------------
    # Stripe close / flush
    # ------------------------------------------------------------------

    def _close_stripe(self) -> None:
        """Seal the accumulated data fragments, finish the incremental
        parity, and dispatch the whole stripe's stores as one plan.

        With ``pipeline_stores`` the stores travel through
        ``Transport.submit_many``: on the simulated testbed the stripe's
        fragments cross the network as concurrent processes (NIC, fabric
        and disk contention come from the resource model), instead of
        being charged one serial round trip each. The write-behind
        window is enforced *before* dispatch, so stripe N+1 was free to
        build while stripe N's stores were still in flight.
        """
        builders = [b for b in self._building if b.item_count > 0]
        self._building = []
        acc, self._parity_acc = self._parity_acc, None
        if not builders:
            return
        ndata = len(builders)
        width = self.layout.width_for(ndata)
        base_fid = builders[0].fid
        servers = self.layout.servers_for_stripe(self._stripe_number, width)
        nparity = width - ndata
        parity_index = ndata if nparity else NO_PARITY
        fragments: List[Fragment] = []
        images: List[bytes] = []
        for index, builder in enumerate(builders):
            fragment = builder.seal(base_fid, width, index,
                                    parity_index, servers)
            image = fragment.encode()
            fragments.append(fragment)
            images.append(image)
            if acc is not None:
                # Fold what the accumulator has not seen: the header
                # (only known now) for fragments folded as they filled,
                # the whole image for the open tail fragment. The tail
                # folds as two ranges so each parity slot keeps exactly
                # two non-overlapping buckets (headers at 0, payloads
                # at HEADER_SIZE) and emits parity by concatenation.
                acc.add_range(index, 0, image[:HEADER_SIZE])
                if not builder.parity_folded:
                    acc.add_range(index, HEADER_SIZE, image[HEADER_SIZE:])
        if nparity:
            data_images = list(images)
            payloads = (acc.payloads() if acc is not None
                        else self._engine.encode(data_images))
            self.cost_hook(self._engine.name,
                           acc.consumed if acc is not None
                           else nparity * sum(len(img) for img in data_images))
            for slot, payload in enumerate(payloads):
                parity_fid = make_fid(self.config.client_id, self._seq.next())
                if parity_fid != base_fid + ndata + slot:
                    raise LogError("non-consecutive stripe FIDs (internal bug)")
                parity = make_parity_fragment(
                    parity_fid, self.config.client_id, data_images, base_fid,
                    width, ndata + slot, servers, payload=payload,
                    parity_index=parity_index)
                fragments.append(parity)
                images.append(parity.encode())
        # Everything below the seal is durability-critical: the stripe
        # exists only in client memory until the stores land.
        self.crash_point("stripe_seal")
        if self.config.preallocate_stripes:
            self._preallocate(fragments, servers)
        self._make_room()
        marked_flags = [b.marked for b in builders] + [False] * (width - ndata)
        plan: List[Tuple[str, m.StoreRequest]] = []
        for fragment, image, marked in zip(fragments, images, marked_flags):
            server_id = servers[fragment.header.stripe_index]
            self.locations.record(fragment.fid, server_id)
            acl_ranges = ()
            if self.config.fragment_aid:
                acl_ranges = ((0, len(image), self.config.fragment_aid),)
            plan.append((server_id, m.StoreRequest(
                fid=fragment.fid, data=image,
                principal=self.config.principal, marked=marked,
                acl_ranges=acl_ranges)))
            self.raw_bytes_written += len(image)
        if self.crash_injector is not None:
            # Under crash injection the stores dispatch one by one, in
            # stripe order, with a crash point before each: dying at the
            # k-th hit leaves exactly the first k-1 members durable — a
            # clean torn tail, the shape rollforward and fsck must
            # handle. Census and armed runs both take this path, so hit
            # numbering is identical between them.
            futures = []
            for server_id, request in plan:
                if request.marked:
                    self.crash_point("marked_fragment_store")
                self.crash_point("scatter_dispatch")
                futures.append(self.transport.submit(server_id, request))
            self.crash_point("post_store_pre_ack")
        elif self.config.pipeline_stores and len(plan) > 1:
            futures = self.transport.submit_many(plan)
        else:
            futures = [self.transport.submit(server_id, request)
                       for server_id, request in plan]
        for (server_id, _request), future in zip(plan, futures):
            if future.triggered:
                if future.exception is not None:
                    self._count_failure(server_id, "stores")
            else:
                self._store_ledger.append((server_id, future))
            self._pending.append(future)
        self._inflight.append(StripeTicket(list(futures)))
        self._stripe_number += 1
        self.stripes_written += 1

    def _make_room(self) -> None:
        """Write-behind backpressure: bound the stripes in flight.

        Completed stripes leave the window as their stores resolve.
        When the window is still full, block on the oldest stripe's
        remaining stores — except from inside a running simulation,
        where the log layer cannot block; there the window is advisory
        and the simulated driver enforces it between appends (via
        :meth:`oldest_inflight_events`).
        """
        from repro.rpc.completion import can_gather, gather

        window = self.config.max_inflight_stripes
        self._inflight = [t for t in self._inflight if not t.done]
        while len(self._inflight) >= window:
            if not can_gather(self.transport):
                break
            gather([e for e in self._inflight[0].events if not e.triggered])
            self._account_store_outcomes()
            self._inflight = [t for t in self._inflight if not t.done]

    def _preallocate(self, fragments, servers) -> None:
        """Reserve a slot for every stripe member before sending data.

        All reservations go out in one overlapped scatter — one round
        trip for the whole stripe, not one per member. Best-effort: a
        server that cannot reserve (full, down) will fail the
        subsequent store instead, which callers already handle through
        the flush ticket; such failures are counted in
        ``preallocate_failures`` rather than silently swallowed.
        """
        from repro.rpc.completion import scatter_call

        plan = [(servers[fragment.header.stripe_index],
                 m.PreallocateRequest(fid=fragment.fid,
                                      principal=self.config.principal))
                for fragment in fragments]
        futures = scatter_call(self.transport, plan)
        for (server_id, _request), future in zip(plan, futures):
            if future.ok:
                continue
            if not isinstance(future.exception, SwarmError):
                raise future.exception
            self.preallocate_failures += 1
            self._count_failure(server_id, "preallocates")

    def flush(self) -> FlushTicket:
        """Seal and dispatch everything buffered; return the ticket.

        Includes stores already in flight from earlier stripe closes, so
        waiting on the ticket means "all my data is durable".
        """
        self._drain_records()
        self._close_stripe()
        events, self._pending = self._pending, []
        return FlushTicket(events, on_observe=self._account_store_outcomes)

    # ------------------------------------------------------------------
    # Stripe-group reconfiguration
    # ------------------------------------------------------------------

    def reform_group(self, group) -> None:
        """Switch to a new stripe group (view) for all *future* stripes.

        The escape hatch for a failed server: already-written stripes
        keep their embedded descriptors (reads reconstruct through
        parity); new stripes simply avoid the dead member. Buffered
        data is unaffected — only placement changes. Cached placements
        on departed servers are invalidated so reads stop trying them.

        Accepts a :class:`StripeGroup` (the original API) or any server
        sequence. Under a view-versioned policy the change is recorded
        as a new epoch effective from the next stripe; under static
        placement the rotation also restarts, exactly as before.
        """
        servers = (group.servers if isinstance(group, StripeGroup)
                   else tuple(group))
        departed = set(self.group.servers) - set(servers)
        for server_id in departed:
            self.locations.evict_server(server_id)
        self.placement.change_view(servers, first_stripe=self._stripe_number)
        self._after_view_change()

    def grow_fleet(self, new_servers) -> None:
        """Add servers to the placement view for all *future* stripes.

        Reallocation-free scale-out: stripes already written (including
        write-behind stripes still in flight) keep their placement —
        only stripes closed after this call rotate over the grown view.
        No data moves, no cache entries are invalidated.
        """
        current = self.group.servers
        added = tuple(sid for sid in new_servers if sid not in current)
        if not added:
            return
        self.placement.change_view(current + added,
                                   first_stripe=self._stripe_number)
        self._after_view_change()

    def shrink_fleet(self, remove_servers) -> None:
        """Remove servers from the placement view for future stripes.

        The removed servers are assumed alive: stripes already written
        there stay in place and stay readable (the view history still
        resolves them), so nothing is evicted or repaired. Policies
        refuse to shrink below what a stripe needs.
        """
        gone = set(remove_servers)
        remaining = tuple(sid for sid in self.group.servers
                          if sid not in gone)
        self.placement.change_view(remaining,
                                   first_stripe=self._stripe_number)
        self._after_view_change()

    def _after_view_change(self) -> None:
        """Re-derive everything that depends on the current view."""
        self._engine = make_engine(self.config.coding,
                                   self.placement.parity_fragments)
        if self.placement.resets_rotation:
            self._stripe_number = self.placement.initial_stripe_number(
                self.config.client_id)
        if self.placement.persist_views:
            self._note_view_change()

    def _note_view_change(self) -> None:
        """Append a VIEW_CHANGE record carrying the full view history.

        Always staged through the group-commit batch — never drained
        here — because view changes can fire from inside a stripe close
        (the failure detector's callback), where touching the builders
        would re-enter the write path. The batch drains on the next
        block append, flush, or checkpoint, preserving LSN order.
        """
        self.crash_point("view_change_append")
        record = Record(self._lsn.next(), SERVICE_LOG_LAYER,
                        RecordType.VIEW_CHANGE,
                        self.placement.encode_views())
        if not self._record_batch:
            self._record_batch_opened = self._clock()
        self._record_batch.append(record)
        self._record_batch_bytes += len(record.encode())

    # ------------------------------------------------------------------
    # Auto-reform (failure-detector driven)
    # ------------------------------------------------------------------

    def _on_health_transition(self, server_id: str, _old: str,
                              new_status: str) -> None:
        """Monitor callback: a ``dead`` verdict on a member reforms the
        group at once — mid-write, before the next stripe is placed."""
        if new_status != "dead":
            return
        self._reform_away_from(server_id)

    def _reform_away_from(self, server_id: str) -> None:
        """Replace (or drop) a dead member for all future stripes.

        Replacement is a *policy decision* (:meth:`PlacementPolicy
        .plan_reform`): static placement drafts the first usable
        configured spare; sequential placement may draft any fleet
        member outside the view. With no usable candidate the view
        shrinks, never below what a stripe needs — then the verdict is
        recorded but the view is kept (writes stay
        degraded-but-recoverable rather than unprotected).

        Buffered data is unaffected either way: fragments of the stripe
        currently being filled pick their servers at stripe close, so
        everything still in the builders flows to the new view. Every
        reform records the view epoch it produced.
        """
        if server_id not in self.group.servers:
            return
        new_servers, replacement, kept_group = self.placement.plan_reform(
            server_id, monitor=self.monitor)
        if kept_group:
            self.reforms.append({"departed": server_id,
                                 "replacement": None,
                                 "kept_group": True,
                                 "epoch": self.placement.view_epoch,
                                 "stripes_written": self.stripes_written})
            return
        self.reform_group(new_servers)
        self.reforms.append({"departed": server_id,
                             "replacement": replacement,
                             "kept_group": False,
                             "epoch": self.placement.view_epoch,
                             "stripes_written": self.stripes_written})

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self, service_id: int, state: bytes) -> FlushTicket:
        """Write a service checkpoint and flush it in a marked fragment.

        The checkpoint record carries the service's consistent state;
        the accompanying checkpoint-table record lists *every* service's
        newest checkpoint, so recovery only needs to find the newest
        marked fragment (via the servers' ``last_marked`` query) to find
        them all. Records older than the checkpoint become obsolete,
        which is what licenses the cleaner to reclaim their stripes.
        """
        # Reserve room for the checkpoint record *and* its table in the
        # same fragment, so the marked fragment is self-contained.
        self._drain_records()
        view_payload = (self.placement.encode_views()
                        if self.placement.persist_views else None)
        table_size_estimate = 64 + 40 * (len(self._checkpoint_table) + 1)
        if view_payload is not None:
            table_size_estimate += len(view_payload) + 96
        self._builder_with_room(len(state) + table_size_estimate + 96)
        record = Record(self._lsn.next(), service_id, RecordType.CHECKPOINT,
                        state)
        addr = self._append_record(record)
        self._checkpoint_table[service_id] = (addr, record.lsn)
        # The CHECKPOINT record exists (in memory) but the table record
        # that makes it discoverable does not — a client dying here must
        # recover from the *previous* checkpoint generation.
        self.crash_point("checkpoint_table_append")
        table_record = Record(self._lsn.next(), SERVICE_LOG_LAYER,
                              RecordType.CHECKPOINT_TABLE,
                              encode_checkpoint_table(self._checkpoint_table))
        table_addr = self._append_record(table_record)
        if table_addr.fid != addr.fid:
            raise LogError("checkpoint split across fragments (internal bug)")
        self._building[-1].marked = True
        if view_payload is not None:
            # Re-embed the full placement view history next to every
            # checkpoint: rollforward starts at the newest checkpoint,
            # and the cleaner may have reclaimed the stripes holding
            # earlier VIEW_CHANGE records. Marked *before* this append:
            # the history may spill to the next fragment when the
            # marked one is nearly full — still within the rollforward
            # scan, so still recovered.
            self.crash_point("view_change_append")
            self._append_record(Record(self._lsn.next(), SERVICE_LOG_LAYER,
                                       RecordType.VIEW_CHANGE, view_payload))
        self.cost_hook("copy", len(state))
        return self.flush()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read(self, addr: BlockAddress) -> bytes:
        """Read a block's data, reconstructing its fragment if needed.

        Returns owned ``bytes`` (the :meth:`read_range` contract); the
        zero-copy views stay below that boundary
        (:meth:`read_fragment`, the transports' payloads).
        """
        data = self.read_range(addr.fid, addr.offset, addr.length)
        if len(data) != addr.length:
            raise BlockNotFoundError("short read at %s" % (addr,))
        return data

    def read_range(self, fid: int, offset: int, length: int) -> bytes:
        """Read an arbitrary byte range of a fragment.

        Not-yet-flushed fragments are served straight from the client's
        write buffer, so services can read back data they just wrote
        without forcing a flush.

        With ``verify_reads`` the partial-retrieve fast path is skipped:
        the payload checksum covers the whole payload, so verification
        needs the whole image, which :meth:`read_fragment` fetches,
        checks, and falls back to parity for when it is corrupt.

        Always returns owned ``bytes``: this is the trust boundary
        where data crosses into service code, which may keep, hash, or
        concatenate the result. The zero-copy views stay below it
        (:meth:`read_fragment`, the transports' payloads).
        """
        from repro.log.reconstruct import Reconstructor

        for builder in self._building:
            if builder.fid == fid:
                return bytes(builder.peek_range(offset, length))
        if self.verify_reads:
            image = self.read_fragment(fid)
            return bytes(image[offset:offset + length])
        server_id = self.locations.locate(fid)
        if server_id is not None:
            try:
                response = self.transport.call(
                    server_id, m.RetrieveRequest(
                        fid=fid, offset=offset, length=length,
                        principal=self.config.principal))
                return bytes(response.payload)
            except LogError:
                raise
            except Exception:
                # Stale placement or downed server: forget it so later
                # reads do not keep retrying the dead location, and
                # fall through to reconstruction.
                self.locations.evict(fid)
        image = Reconstructor(self.transport, self.config.principal,
                              locations=self.locations).fetch(fid)
        return bytes(image[offset:offset + length])

    def read_ranges(self, ranges: List[Tuple[int, int, int]],
                    ) -> List[Optional[bytes]]:
        """Read many ``(fid, offset, length)`` ranges, batched per server.

        Returns one owned ``bytes`` per range, in request order, or
        ``None`` where the bytes could not be produced even through
        reconstruction. Ranges in still-buffered fragments are served
        from the builders. Everything else is grouped by located server
        and fetched with *one* ``MultiRetrieveRequest`` per server, all
        servers in one overlapped scatter — the cleaner harvesting a
        stripe's live blocks or a service gathering scattered small
        reads pays round trips proportional to the stripe width, not to
        the block count. A failed batch falls back to the per-range
        :meth:`read_range` ladder (reconstruction included), so one
        sick server degrades the batch to the old cost, never to a
        wrong answer.

        With ``verify_reads`` the batched fast path is skipped the same
        way :meth:`read_range` skips its partial-retrieve fast path:
        the payload checksum covers whole fragments, so each distinct
        fragment is fetched whole, verified, and sliced.
        """
        ranges = [(fid, offset, length) for fid, offset, length in ranges]
        results: List[Optional[bytes]] = [None] * len(ranges)
        remote: List[int] = []
        for index, (fid, offset, length) in enumerate(ranges):
            for builder in self._building:
                if builder.fid == fid:
                    results[index] = bytes(builder.peek_range(offset, length))
                    break
            else:
                remote.append(index)
        if not remote:
            return results
        if self.verify_reads:
            images: Dict[int, Optional[bytes]] = {}
            for index in remote:
                fid, offset, length = ranges[index]
                if fid not in images:
                    try:
                        images[fid] = self.read_fragment(fid)
                    except SwarmError:
                        images[fid] = None
                image = images[fid]
                if image is not None:
                    results[index] = bytes(image[offset:offset + length])
            return results
        from repro.rpc.completion import scatter_call

        located = self.locations.locate_many(
            sorted({ranges[index][0] for index in remote}))
        by_server: Dict[str, List[int]] = {}
        fallback: List[int] = []
        for index in remote:
            server_id = located.get(ranges[index][0])
            if server_id is None:
                fallback.append(index)
            else:
                by_server.setdefault(server_id, []).append(index)
        groups = sorted(by_server.items())
        futures = scatter_call(self.transport, [
            (server_id, m.MultiRetrieveRequest(
                ranges=tuple(ranges[index] for index in indices),
                principal=self.config.principal))
            for server_id, indices in groups])
        for (server_id, indices), future in zip(groups, futures):
            if future.ok:
                payload = memoryview(future.value.payload)
                if len(payload) == sum(ranges[index][2] for index in indices):
                    pos = 0
                    for index in indices:
                        length = ranges[index][2]
                        results[index] = bytes(payload[pos:pos + length])
                        pos += length
                    continue
                # Garbled reply length: re-read these ranges one by one.
                fallback.extend(indices)
                continue
            if not isinstance(future.exception, SwarmError):
                raise future.exception
            # Stale placements or a downed server: evict so the
            # per-range ladder broadcasts/reconstructs afresh.
            for index in indices:
                self.locations.evict(ranges[index][0])
            fallback.extend(indices)
        for index in fallback:
            fid, offset, length = ranges[index]
            try:
                data = self.read_range(fid, offset, length)
            except SwarmError:
                continue
            if len(data) == length:
                results[index] = data
        return results

    def read_fragment(self, fid: int) -> bytes:
        """Read a whole fragment image (cleaner / recovery paths).

        With ``verify_reads`` the fetched image must match its payload
        checksum; a mismatch evicts the placement and rebuilds the true
        image from the stripe's parity, exactly as if the holding server
        had been down.
        """
        from repro.log.reconstruct import Reconstructor

        server_id = self.locations.locate(fid)
        if server_id is not None:
            try:
                response = self.transport.call(
                    server_id, m.RetrieveRequest(
                        fid=fid, principal=self.config.principal))
                image = response.payload
                if self.verify_reads:
                    Fragment.decode(image, verify_crc=True)
                return image
            except CorruptFragmentError:
                self.locations.evict(fid)
            except Exception:
                self.locations.evict(fid)
        return Reconstructor(self.transport, self.config.principal,
                             locations=self.locations,
                             verify=self.verify_reads).fetch(fid)

    # ------------------------------------------------------------------
    # Deletion of whole stripes (cleaner back-end)
    # ------------------------------------------------------------------

    def delete_stripe(self, base_fid: int, width: int) -> List[int]:
        """Delete every fragment of a stripe from its servers.

        Returns the fids that could *not* be deleted (their server
        failed mid-delete), so the caller — the cleaner — can re-queue
        them instead of leaking slots. Unlocatable fragments count as
        already gone.
        """
        return self.delete_fids([base_fid + i for i in range(width)])

    def delete_fids(self, fids: List[int]) -> List[int]:
        """Delete fragments by fid, all deletes in one overlapped scatter.

        Returns the fids whose delete failed with a server error —
        candidates for a later retry. A fragment that no server claims
        to hold, or that is already gone (``FragmentNotFoundError``),
        is treated as deleted. Failures are counted in
        ``delete_failures``; unexpected non-Swarm exceptions propagate.
        """
        from repro.rpc.completion import scatter_call

        located = self.locations.locate_many(fids)
        targets = [(fid, located[fid]) for fid in fids if fid in located]
        futures = scatter_call(self.transport, [
            (server_id, m.DeleteRequest(fid=fid,
                                        principal=self.config.principal))
            for fid, server_id in targets])
        failed: List[int] = []
        for (fid, server_id), future in zip(targets, futures):
            if not future.ok:
                if isinstance(future.exception, FragmentNotFoundError):
                    pass  # already gone: deletion is idempotent
                elif isinstance(future.exception, SwarmError):
                    self.delete_failures += 1
                    self._count_failure(server_id, "deletes")
                    failed.append(fid)
                else:
                    raise future.exception
            self.locations.evict(fid)
        return failed

    # ------------------------------------------------------------------
    # Recovery hand-off
    # ------------------------------------------------------------------

    def adopt_recovered_state(self, highest_fid_seen: int, highest_lsn: int,
                              checkpoint_table: Dict[int, Tuple[BlockAddress, int]],
                              view_payload: Optional[bytes] = None) -> None:
        """Fast-forward counters after log rollforward.

        Ensures newly allocated FIDs/LSNs never collide with what is
        already durable in the log. ``view_payload`` is the newest
        VIEW_CHANGE record found during rollforward (by LSN): adopting
        it restores the placement view history — the crashed client's
        epochs — so future stripes continue under the latest view and
        past epochs stay resolvable.
        """
        self._seq.advance_past(fid_seq(highest_fid_seen))
        self._lsn.advance_past(highest_lsn)
        self._checkpoint_table = dict(checkpoint_table)
        # Stripe rotation continues from an estimate; exactness is not
        # required for correctness, only for balance.
        self._stripe_number = fid_seq(highest_fid_seen)
        if view_payload:
            from repro.placement import decode_views

            self.placement.adopt_views(decode_views(view_payload))
            newest = self.placement.views()[-1]
            # Never rotate backwards into a stripe window governed by
            # an older view than the newest epoch.
            self._stripe_number = max(self._stripe_number,
                                      newest.first_stripe)
            self._engine = make_engine(self.config.coding,
                                       self.placement.parity_fragments)
