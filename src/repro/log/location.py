"""Shared client-side fragment-location cache.

Swarm has no directory service: the cluster itself answers "who holds
fragment N" through the broadcast ``holds`` query (§2.4.3). That makes
every location lookup a full sweep of the stripe group, so the client
caches everything it learns — from its own writes, from stripe
descriptors embedded in fetched fragment headers, and from broadcast
answers — and batches the lookups it still has to make into one RPC per
server.

One cache is meant to be *shared* across everything a client runs: the
log layer, the reconstructor, the sequential log reader, recovery, and
fsck all accept a ``LocationCache`` so a placement learned on any path
is reused by all of them.

Invalidation: entries are dropped when a retrieve against the cached
server fails (the placement is stale or the server is down), when a
stripe is deleted, and when the client reforms its stripe group away
from a departed server.

Capacity: ``max_entries`` bounds the cache with least-recently-used
eviction (reads and writes both refresh recency). On a large fleet the
map otherwise grows with every stripe ever written or located — a real
memory consumer at hundreds of servers — and an evicted placement is
merely re-learned by the next broadcast, never a correctness issue.
Bounded or not, the eviction order is deterministic, so chaos replays
stay bit-identical.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence


class LocationCache:
    """fid → server-id map with batched broadcast fill and optional LRU."""

    def __init__(self, transport, principal: str = "",
                 max_entries: int = 0) -> None:
        self.transport = transport
        self.principal = principal
        self.max_entries = int(max_entries or 0)
        self._map: "OrderedDict[int, str]" = OrderedDict()
        # Statistics (read by the perf harness and tests).
        self.hits = 0
        self.misses = 0
        self.broadcasts = 0
        self.evictions = 0
        self.lru_evictions = 0

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, fid: int) -> bool:
        return fid in self._map

    def stats(self) -> Dict[str, int]:
        """One structured counter snapshot (``health_report`` feeds)."""
        return {
            "entries": len(self._map),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "broadcasts": self.broadcasts,
            "evictions": self.evictions,
            "lru_evictions": self.lru_evictions,
        }

    # -- local (no network) --------------------------------------------------

    def _insert(self, fid: int, server_id: str) -> None:
        known = fid in self._map
        self._map[fid] = server_id
        if known:
            self._map.move_to_end(fid)
        elif self.max_entries and len(self._map) > self.max_entries:
            while len(self._map) > self.max_entries:
                self._map.popitem(last=False)
                self.lru_evictions += 1

    def get(self, fid: int) -> Optional[str]:
        """Cached server for ``fid``; never touches the network."""
        server_id = self._map.get(fid)
        if server_id is not None:
            self._map.move_to_end(fid)
        return server_id

    def record(self, fid: int, server_id: str) -> None:
        """Remember that ``server_id`` holds ``fid``."""
        self._insert(fid, server_id)

    def learn(self, header) -> None:
        """Absorb a fragment header's whole stripe descriptor.

        One fetched fragment names the server of every stripe sibling,
        so a single read can save ``width - 1`` future broadcasts.
        """
        for index, server_id in enumerate(header.servers):
            self._insert(header.stripe_base_fid + index, server_id)

    def fids_on(self, server_id: str) -> List[int]:
        """Cached fids believed to live on ``server_id``, sorted.

        The repair daemon's first candidate list after a server dies:
        everything the client remembers placing (or locating) there is
        a stripe that now needs a member re-materialized.
        """
        return sorted(fid for fid, sid in self._map.items()
                      if sid == server_id)

    def evict(self, fid: int) -> None:
        """Drop a placement (observed to be stale or deleted)."""
        if self._map.pop(fid, None) is not None:
            self.evictions += 1

    def evict_server(self, server_id: str) -> None:
        """Drop every placement pointing at ``server_id``."""
        stale = [fid for fid, sid in self._map.items() if sid == server_id]
        for fid in stale:
            del self._map[fid]
        self.evictions += len(stale)

    def retain_servers(self, server_ids: Iterable[str]) -> None:
        """Drop placements on servers outside ``server_ids``.

        Used when a stripe group is reformed away from a failed server:
        everything believed to live on departed members must be looked
        up (or reconstructed) fresh.
        """
        keep = set(server_ids)
        stale = [fid for fid, sid in self._map.items() if sid not in keep]
        for fid in stale:
            del self._map[fid]
        self.evictions += len(stale)

    def clear(self) -> None:
        """Forget everything (keeps statistics)."""
        self._map.clear()

    # -- filling (batched broadcast) -----------------------------------------

    def locate(self, fid: int) -> Optional[str]:
        """Server holding ``fid``; broadcasts on a cache miss."""
        return self.locate_many((fid,)).get(fid)

    def locate_many(self, fids: Sequence[int]) -> Dict[int, str]:
        """Locate many fragments with at most one broadcast.

        Cache hits are answered locally; all misses go out together in
        a single :meth:`~repro.rpc.transport.Transport.broadcast_holds`
        — one RPC per server, and since the broadcast itself scatters,
        the whole sweep costs one overlapped round trip regardless of
        cluster size. Unlocatable fids are absent from the result.

        A server that fails to answer the broadcast also has its cached
        placements evicted: if it cannot say what it holds, everything
        previously believed to be on it is suspect, and later reads
        should re-locate (or reconstruct) rather than keep retrying a
        sick server.
        """
        found: Dict[int, str] = {}
        missing = []
        for fid in fids:
            server_id = self.get(fid)
            if server_id is None:
                missing.append(fid)
            else:
                found[fid] = server_id
                self.hits += 1
        if missing:
            self.misses += len(missing)
            self.broadcasts += 1
            located = self.transport.broadcast_holds(
                missing, on_unreachable=self.evict_server)
            for fid in sorted(located):
                self._insert(fid, located[fid])
            found.update(located)
        return found
