"""Fragment identifiers and block addresses.

A fragment is identified by a 64-bit integer FID. To keep every
client's FIDs globally unique without any coordination (a core Swarm
design goal), the high 24 bits carry the client id and the low 40 bits
a per-client sequence number. Fragments of one stripe have *consecutive*
sequence numbers — the property fragment reconstruction relies on: the
stripe sibling of fragment N is reachable from N−1 or N+1.

A block is addressed by ``(FID, offset, length)``: the byte range of the
block's data within the stored fragment. Storage servers serve byte
ranges without interpreting them, so this address is all a reader needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.fids import FID_NONE, fid_client, fid_seq, make_fid

__all__ = ["FID_NONE", "make_fid", "fid_client", "fid_seq", "BlockAddress"]


@dataclass(frozen=True, order=True)
class BlockAddress:
    """The location of one block's data inside the log.

    Attributes
    ----------
    fid:
        Fragment identifier.
    offset:
        Byte offset of the block data within the stored fragment image.
    length:
        Length of the block data in bytes.
    """

    fid: int
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length < 0:
            raise ValueError("negative offset/length in block address")

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return "%d.%d:%d+%d" % (fid_client(self.fid), fid_seq(self.fid),
                                self.offset, self.length)
