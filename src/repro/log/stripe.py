"""Striping and parity.

A *stripe* is a set of two or more fragments with consecutive FIDs, the
last of which holds the XOR parity of the others. Each fragment of a
stripe lives on a different server; the set of servers a client stripes
over is its *stripe group*. The parity fragment's server rotates across
successive stripes so that reconstruction load spreads evenly — the
distributed analogue of RAID-5's rotated parity.

Clients using disjoint stripe groups never contend; and because two
failures only lose data if they land in the *same* stripe group, smaller
groups let the system survive more simultaneous failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ConfigError
from repro.log.fragment import MAX_STRIPE_WIDTH


def parity_of(images: Sequence[bytes]) -> bytes:
    """Byte-wise XOR of ``images``, zero-padded to the longest.

    XOR with zero is the identity, so padding preserves the recovery
    property: ``parity_of([parity] + survivors)`` returns the missing
    image (possibly with trailing zero padding, which the fragment
    header makes harmless).

    This byte-at-a-time loop is the *reference oracle*: tests check the
    fast implementation against it, but no hot path calls it —
    :func:`parity_of_fast` is what the write, recovery, and scrub paths
    use.
    """
    if not images:
        return b""
    length = max(len(image) for image in images)
    acc = bytearray(length)
    for image in images:
        for i, byte in enumerate(image):
            acc[i] ^= byte
    return bytes(acc)


def parity_of_fast(images: Sequence[bytes]) -> bytes:
    """XOR using ``int.from_bytes`` arithmetic — much faster in CPython.

    Functionally identical to :func:`parity_of`; this is the
    implementation every hot path (stripe close, reconstruction, fsck)
    uses. Accepts any bytes-like inputs (including ``memoryview``
    slices from the zero-copy pipeline) without copying them.
    """
    if not images:
        return b""
    length = max(len(image) for image in images)
    acc = 0
    for image in images:
        acc ^= int.from_bytes(image, "little")
    return acc.to_bytes(length, "little")


class ParityAccumulator:
    """Running XOR of a stripe's data images, fed as the data arrives.

    The stripe close used to XOR every complete data image in one
    O(stripe-size) pass; this instead folds each appended item's bytes
    into a running integer accumulator *as it is appended*, so by the
    time the last data fragment seals, the parity payload is one
    ``to_bytes`` away and the close-time XOR stall disappears.

    Parity covers complete images — header at image offset 0, items at
    their absolute image offsets — and all data images XOR together
    aligned at offset 0, so every range folds at its absolute image
    offset with the same big-int arithmetic as :func:`parity_of_fast`,
    spread over time. Headers are only known at seal time and are
    folded in then.

    Folds are bucketed by exact offset, so each fold is a shift-free
    XOR against only the bytes that share its offset — the log layer
    produces exactly two buckets (headers at 0, payloads at
    ``HEADER_SIZE``) whose ranges never overlap, and the payload is
    then emitted by concatenation with no whole-stripe shift or XOR
    pass at all. Overlapping buckets (arbitrary interleavings) fall
    back to one shifted combine per bucket at emit time.

    ``consumed`` counts the bytes folded so far, so the log layer's
    ``cost_hook("xor", ...)`` accounting stays byte-exact with the
    one-shot implementation it replaces.
    """

    def __init__(self) -> None:
        # offset -> [acc_int, max_range_length_at_that_offset]
        self._buckets = {}
        self.consumed = 0

    def add_range(self, offset: int, data) -> None:
        """Fold ``data`` located at absolute image offset ``offset`` of
        one of the stripe's data fragments."""
        size = len(data)
        if not size:
            return
        bucket = self._buckets.get(offset)
        if bucket is None:
            self._buckets[offset] = [int.from_bytes(data, "little"), size]
        else:
            bucket[0] ^= int.from_bytes(data, "little")
            if size > bucket[1]:
                bucket[1] = size
        self.consumed += size

    def parity_payload(self) -> bytes:
        """The accumulated XOR as little-endian bytes.

        Identical to ``parity_of_fast(images)`` over the stripe's
        complete data images (zero-padded to the longest).
        """
        if not self._buckets:
            return b""
        spans = sorted((off, acc, length)
                       for off, (acc, length) in self._buckets.items())
        disjoint = all(spans[i][0] + spans[i][2] <= spans[i + 1][0]
                       for i in range(len(spans) - 1))
        if disjoint:
            parts = []
            pos = 0
            for off, acc, length in spans:
                parts.append(b"\x00" * (off - pos))
                parts.append(acc.to_bytes(length, "little"))
                pos = off + length
            return b"".join(parts)
        total = 0
        total_len = 0
        for off, acc, length in spans:
            total ^= acc << (8 * off)
            end = off + length
            if end > total_len:
                total_len = end
        return total.to_bytes(total_len, "little")


@dataclass(frozen=True)
class StripeGroup:
    """The ordered set of servers one client stripes across."""

    servers: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.servers) < 1:
            raise ConfigError("stripe group needs at least one server")
        if len(self.servers) > MAX_STRIPE_WIDTH:
            raise ConfigError(
                "stripe group of %d servers exceeds MAX_STRIPE_WIDTH (%d), "
                "the fragment header's per-stripe descriptor capacity; to "
                "stripe over a larger fleet keep the stripe *width* within "
                "the limit and use repro.placement.SequentialCheckingPlacement"
                % (len(self.servers), MAX_STRIPE_WIDTH))
        if len(set(self.servers)) != len(self.servers):
            raise ConfigError("duplicate server in stripe group")

    @property
    def size(self) -> int:
        """Number of servers in the group."""
        return len(self.servers)

    @property
    def supports_parity(self) -> bool:
        """Parity requires at least two servers (one data + one parity)."""
        return self.size >= 2


class StripeLayout:
    """Deterministic fragment→server placement with rotated parity.

    Stripe ``k`` places its member with stripe index ``i`` on
    ``servers[(k + i) % group_size]``. Parity members are always the
    stripe's last indices, so the parity *servers* advance by one slot
    per stripe — balancing both capacity and reconstruction load.

    ``parity_fragments`` is the configured parity count ``m``; the
    effective count is clamped to the group size minus one (a stripe
    needs at least one data member), so the default ``m=1`` over a
    one-server group degenerates to the paper's raw unprotected
    stripes, exactly as before.
    """

    def __init__(self, group: StripeGroup, parity_fragments: int = 1) -> None:
        if parity_fragments < 0:
            raise ConfigError("parity_fragments must be >= 0")
        self.group = group
        self.parity_fragments = min(parity_fragments, group.size - 1)

    def width_for(self, data_fragments: int) -> int:
        """Total stripe width for ``data_fragments`` data members."""
        if data_fragments < 1:
            raise ValueError("a stripe needs at least one data fragment")
        return data_fragments + self.parity_fragments

    def max_data_fragments(self) -> int:
        """Most data fragments a full-width stripe can carry."""
        return max(1, self.group.size - self.parity_fragments)

    def servers_for_stripe(self, stripe_number: int, width: int) -> Tuple[str, ...]:
        """Server names, in stripe-index order, for stripe ``stripe_number``."""
        if width > self.group.size:
            raise ValueError("stripe wider than its group")
        size = self.group.size
        return tuple(self.group.servers[(stripe_number + i) % size]
                     for i in range(width))

    def parity_index(self, width: int) -> int:
        """Stripe index of the *first* parity member.

        Data members occupy indices ``0..parity_index-1``, parity
        members ``parity_index..width-1``; with one parity fragment
        this is the stripe's last index, matching the original header
        convention bit for bit.
        """
        return width - self.parity_fragments


def recover_data_image(parity_payload: bytes,
                       surviving_data_images: Sequence[bytes]) -> bytes:
    """Recover one missing *data* fragment image from a stripe.

    The parity payload is the XOR of all data images, so XOR-ing it with
    the surviving data images yields the missing one (possibly with
    trailing zero padding, which fragment headers make harmless).
    """
    return parity_of_fast([parity_payload, *surviving_data_images])
