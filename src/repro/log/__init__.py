"""The Swarm log layer — the paper's primary contribution.

Each client owns a conceptually infinite, append-only log of *blocks*
(opaque service data) and *records* (recovery metadata). The log is
batched into fixed-size *fragments* (1 MB in the prototype), and
fragments are striped across storage servers in *stripes* whose last
member is an XOR parity fragment. Parity position rotates across
stripes. Because each client computes parity for its own log, clients
never synchronize with each other, and servers never synchronize at all.
"""

from repro.log.address import FID_NONE, BlockAddress, fid_client, fid_seq, make_fid
from repro.log.config import LogConfig
from repro.log.records import (
    Record,
    RecordType,
    decode_record_payload_block,
    encode_record_payload_block,
)
from repro.log.fragment import Fragment, FragmentBuilder, FragmentHeader, LogItem
from repro.log.stripe import StripeGroup, StripeLayout, parity_of
from repro.log.layer import FlushTicket, LogLayer
from repro.log.reader import LogReader
from repro.log.recovery import RecoveredState, recover_service_state
from repro.log.reconstruct import Reconstructor

__all__ = [
    "FID_NONE",
    "BlockAddress",
    "fid_client",
    "fid_seq",
    "make_fid",
    "LogConfig",
    "Record",
    "RecordType",
    "encode_record_payload_block",
    "decode_record_payload_block",
    "Fragment",
    "FragmentBuilder",
    "FragmentHeader",
    "LogItem",
    "StripeGroup",
    "StripeLayout",
    "parity_of",
    "FlushTicket",
    "LogLayer",
    "LogReader",
    "RecoveredState",
    "recover_service_state",
    "Reconstructor",
]
