"""Crash recovery: checkpoint discovery and log rollforward (§2.1.3).

A service recovers by (1) finding its most recent checkpoint and
(2) replaying the records it wrote after that checkpoint, in order.
Checkpoints live in *marked* fragments, and every marked fragment also
carries a checkpoint-table record naming the newest checkpoint of every
service, so discovery is two steps: ask each server for the newest
marked FID of this client, then read that one fragment.

Checkpoints are an optimization only — with none present, rollforward
simply starts from the beginning of the client's log (FID sequence 1),
exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SwarmError
from repro.log.address import BlockAddress, make_fid
from repro.log.location import LocationCache
from repro.log.reader import LogReader
from repro.log.records import (
    Record,
    RecordType,
    SERVICE_LOG_LAYER,
    decode_checkpoint_table,
    decode_record_payload_block,
)
from repro.rpc import messages as m
from repro.rpc.completion import scatter_call


@dataclass
class RecoveredState:
    """Everything one service needs to restart after a crash."""

    service_id: int
    checkpoint_state: Optional[bytes]
    checkpoint_lsn: int
    records: List[Record] = field(default_factory=list)
    highest_fid: int = 0
    highest_lsn: int = 0
    checkpoint_table: Dict[int, Tuple[BlockAddress, int]] = field(
        default_factory=dict)
    view_payload: Optional[bytes] = None
    """Newest placement VIEW_CHANGE payload seen during rollforward
    (full view history; ``None`` when the log predates view-versioned
    placement or uses static placement)."""
    view_lsn: int = 0


def find_newest_marked_fid(transport, client_id: int,
                           principal: str = "") -> int:
    """Ask every reachable server for this client's newest marked FID.

    All servers are asked concurrently — checkpoint discovery is the
    first thing a restarting service does, and it should cost one
    overlapped round trip, not a sweep serialized over the cluster.
    Unreachable servers are simply skipped; the marked fragment is
    replicated into the stripe like everything else, so any survivor
    that stored it can answer.

    If *no* server answers at all, raises :class:`SwarmError`: a total
    partition is indistinguishable from "no checkpoint exists", and
    silently returning 0 would make recovery replay from FID 1 — an
    empty (cleaned) head reading as an empty log, i.e. quiet data loss.
    """
    request = m.LastMarkedRequest(client_id=client_id, principal=principal)
    server_ids = list(transport.server_ids())
    futures = scatter_call(
        transport,
        [(server_id, request) for server_id in server_ids])
    newest = 0
    answered = 0
    for future in futures:
        if not future.ok:
            if not isinstance(future.exception, SwarmError):
                raise future.exception
            continue
        answered += 1
        newest = max(newest, future.value.value)
    if server_ids and not answered:
        raise SwarmError(
            "checkpoint discovery failed: none of %d servers answered the "
            "last-marked query for client %d (total partition?)"
            % (len(server_ids), client_id))
    return newest


def load_checkpoint_table(reader: LogReader, marked_fid: int,
                          ) -> Dict[int, Tuple[BlockAddress, int]]:
    """Read the newest checkpoint-table record out of a marked fragment."""
    fragment = reader.read_fragment(marked_fid)
    if fragment is None:
        return {}
    table: Dict[int, Tuple[BlockAddress, int]] = {}
    for record in fragment.records():
        if (record.service_id == SERVICE_LOG_LAYER
                and record.rtype == RecordType.CHECKPOINT_TABLE):
            table = decode_checkpoint_table(record.payload)
    return table


def record_concerns_service(record: Record, service_id: int) -> bool:
    """Whether a replayed record should reach ``service_id``.

    A service sees its own records plus the log layer's automatic
    CREATE/DELETE records for blocks it owns.
    """
    if record.service_id == service_id:
        return True
    if (record.service_id == SERVICE_LOG_LAYER
            and record.rtype in (RecordType.CREATE, RecordType.DELETE)):
        _addr, owner, _info = decode_record_payload_block(record.payload)
        return owner == service_id
    return False


def recover_service_state(transport, client_id: int, service_id: int,
                          principal: str = "",
                          include_all_block_records: bool = False,
                          reader: Optional[LogReader] = None,
                          locations: Optional[LocationCache] = None,
                          max_inflight: int = 1,
                          ) -> RecoveredState:
    """Recover one service's state from the log.

    Parameters
    ----------
    include_all_block_records:
        The cleaner sets this: it needs every service's CREATE/DELETE
        records (to rebuild its liveness table), not just its own.
    reader:
        Share one :class:`LogReader` across several services' recoveries
        to reuse its placement cache.
    locations:
        When no ``reader`` is given, build one around this shared
        :class:`LocationCache` (e.g. the restarting client's own cache)
        instead of an empty one.
    max_inflight:
        Read-ahead window depth for the rollforward scan when no
        ``reader`` is given (a given reader keeps its own).
    """
    reader = reader or LogReader(transport, principal, locations=locations,
                                 max_inflight=max_inflight)
    marked_fid = find_newest_marked_fid(transport, client_id, principal)
    table: Dict[int, Tuple[BlockAddress, int]] = {}
    checkpoint_state: Optional[bytes] = None
    checkpoint_lsn = 0
    start_fid = make_fid(client_id, 1)
    if marked_fid:
        table = load_checkpoint_table(reader, marked_fid)
        entry = table.get(service_id)
        if entry is not None:
            addr, lsn = entry
            fragment = reader.read_fragment(addr.fid)
            record = None
            if fragment is not None:
                try:
                    record, _end = Record.decode(fragment.encode(),
                                                 addr.offset)
                except Exception:
                    record = None
            if (record is not None
                    and record.rtype == RecordType.CHECKPOINT
                    and record.service_id == service_id):
                checkpoint_state = record.payload
                checkpoint_lsn = lsn
                start_fid = addr.fid
            else:
                # The table names a checkpoint that cannot be read back
                # (its fragment lost or torn, or the offset does not
                # decode to this service's CHECKPOINT). Trusting the
                # LSN without the state would skip every record up to
                # it — silent data loss. Forget the entry and fall
                # through to the no-checkpoint full scan below.
                entry = None
        if entry is None:
            # Service never checkpointed. Scan from the log head; if the
            # cleaner already reclaimed early stripes (it demands
            # checkpoints and eventually cleans past laggards — the
            # paper's "at its own peril" case), fall back to the oldest
            # checkpointed fragment, which is guaranteed to exist.
            if reader.read_fragment(start_fid) is None:
                start_fid = min((a.fid for a, _l in table.values()),
                                default=start_fid)

    result = RecoveredState(service_id=service_id,
                            checkpoint_state=checkpoint_state,
                            checkpoint_lsn=checkpoint_lsn,
                            checkpoint_table=table)
    for fragment in reader.fragments_from(start_fid):
        result.highest_fid = max(result.highest_fid, fragment.fid,
                                 fragment.header.stripe_base_fid
                                 + fragment.header.stripe_width - 1)
        for record in fragment.records():
            result.highest_lsn = max(result.highest_lsn, record.lsn)
            if (record.service_id == SERVICE_LOG_LAYER
                    and record.rtype == RecordType.VIEW_CHANGE):
                # Placement view history: adopted by the log layer,
                # never replayed to services (captured before the LSN
                # filter and before the cleaner's all-records branch —
                # each payload is the full history, newest LSN wins).
                if record.lsn > result.view_lsn:
                    result.view_lsn = record.lsn
                    result.view_payload = record.payload
                continue
            if record.lsn <= result.checkpoint_lsn:
                continue
            if record.rtype == RecordType.CHECKPOINT_TABLE:
                continue
            if record.rtype == RecordType.CHECKPOINT:
                # A checkpoint newer than the one we started from (e.g.
                # the server holding the newest marked fragment is down,
                # but the fragment is reachable through parity during
                # the scan). Adopt it and obsolete earlier records.
                if record.service_id == service_id:
                    result.checkpoint_state = record.payload
                    result.checkpoint_lsn = record.lsn
                    result.records = [r for r in result.records
                                      if r.lsn > record.lsn]
                continue
            if include_all_block_records and record.service_id == SERVICE_LOG_LAYER:
                result.records.append(record)
            elif record_concerns_service(record, service_id):
                result.records.append(record)
    result.records.sort(key=lambda record: record.lsn)
    # Defensive dedupe: a cleaner that died between re-appending live
    # blocks and deleting their originals (or a duplicated store on the
    # wire) can leave the same record durable in two fragments. Replay
    # must apply each LSN exactly once.
    deduped: List[Record] = []
    for record in result.records:
        if deduped and deduped[-1].lsn == record.lsn:
            continue
        deduped.append(record)
    result.records = deduped
    return result
