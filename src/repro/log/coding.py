"""Pluggable k-of-n erasure coding for the striped log.

The paper's stripes tolerate exactly one failure (RAID-5-style XOR
parity). This module generalizes the write/reconstruct math to *(k data,
m parity)* codes behind one small :class:`CodingEngine` interface, with
two implementations:

* :class:`XorEngine` — the original single-parity path, bit-identical
  to the pre-refactor XOR code (it *is* that code, behind the
  interface);
* :class:`ReedSolomonEngine` — a systematic Reed–Solomon code over
  GF(256) that recovers any ``m`` erased stripe members.

**Coefficients.** Parity slot ``j`` of a stripe with data images
``D_0..D_{k-1}`` is ``P_j = sum_i C[j][i] * D_i`` over GF(256), where
``C`` is a *normalized Cauchy matrix*: start from
``C0[j][i] = 1 / (x_j + y_i)`` with ``x_j = j`` and ``y_i = m + i``
(GF addition is XOR, and the two index sets never collide), then scale
each column so row 0 is all ones and each row so column 0 is all ones.
Every square submatrix of a Cauchy matrix is invertible, and scaling
rows/columns by nonzero constants preserves that, so *any* ``m``
erasures are recoverable. The normalization buys two properties this
module leans on hard:

* for ``m == 1`` the matrix is the single all-ones row — Reed–Solomon
  degenerates to plain XOR, so the on-disk format needs **no scheme
  tag**: readers pick the engine purely from the stripe geometry, and
  existing single-parity stripes decode unchanged;
* ``C[j][i]`` depends only on ``(m, j, i)``, never on ``k`` — the
  matrix for a short stripe is a column prefix of the full-width one,
  so incremental accumulation can start before the final stripe width
  is known (stripes close short at flush time).

**Vectorized arithmetic.** Multiplying a whole image by a constant
``c`` is a 256-byte table lookup (``bytes.translate``); accumulating is
the same little-endian big-int XOR :class:`~repro.log.stripe.ParityAccumulator`
uses. Multiplies by 1 skip the translate entirely, which is what keeps
the XOR path's wall-clock unchanged.

**Erasure decode.** A stripe is a systematic codeword: rows ``0..k-1``
of the generator are the identity (the data images themselves), rows
``k..k+m-1`` are ``C``. Any ``k`` surviving rows form an invertible
``k×k`` matrix; its inverse (cached per ``(k, m, survivor-set)``)
turns survivors back into the erased data images.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.log.stripe import ParityAccumulator, parity_of_fast

GF_POLY = 0x11D
"""The field's primitive polynomial (x^8+x^4+x^3+x^2+1); 2 generates
the multiplicative group, so log/exp tables cover every element."""

_EXP: List[int] = [0] * 512
_LOG: List[int] = [0] * 256


def _build_tables() -> None:
    value = 1
    for power in range(255):
        _EXP[power] = value
        _LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= GF_POLY
    for power in range(255, 512):
        _EXP[power] = _EXP[power - 255]


_build_tables()


def gf_mul(a: int, b: int) -> int:
    """Product of two field elements."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_inv(a: int) -> int:
    """Multiplicative inverse (``a`` must be nonzero)."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return _EXP[255 - _LOG[a]]


def gf_div(a: int, b: int) -> int:
    """``a / b`` in the field (``b`` must be nonzero)."""
    if b == 0:
        raise ZeroDivisionError("division by 0 in GF(256)")
    if a == 0:
        return 0
    return _EXP[_LOG[a] + 255 - _LOG[b]]


_MUL_TABLES: Dict[int, bytes] = {}


def mul_table(c: int) -> bytes:
    """The 256-entry ``bytes.translate`` table for multiply-by-``c``."""
    table = _MUL_TABLES.get(c)
    if table is None:
        table = bytes(gf_mul(c, v) for v in range(256))
        _MUL_TABLES[c] = table
    return table


def scale_bytes(data, c: int) -> bytes:
    """``c * data`` element-wise — one translate, no Python loop."""
    if c == 1:
        return bytes(data)
    if c == 0:
        return bytes(len(data))
    return bytes(data).translate(mul_table(c))


# ----------------------------------------------------------------------
# The normalized Cauchy coding matrix
# ----------------------------------------------------------------------

_COEFFICIENTS: Dict[Tuple[int, int, int], int] = {}


def coding_coefficient(m: int, j: int, i: int) -> int:
    """``C[j][i]`` for an ``m``-parity code — independent of ``k``."""
    key = (m, j, i)
    value = _COEFFICIENTS.get(key)
    if value is None:
        if m + i > 255:
            raise ConfigError("stripe too wide for GF(256) coding")
        # Column-scale so row 0 is all ones, then row-scale so column 0
        # is all ones; both preserve every submatrix's invertibility.
        raw = gf_div(gf_inv(j ^ (m + i)), gf_inv(m + i))
        row_unit = gf_div(gf_inv(j ^ m), gf_inv(m))
        value = gf_div(raw, row_unit)
        _COEFFICIENTS[key] = value
    return value


def coding_matrix(k: int, m: int) -> List[List[int]]:
    """The full ``m × k`` parity coefficient matrix."""
    return [[coding_coefficient(m, j, i) for i in range(k)]
            for j in range(m)]


def generator_row(k: int, m: int, row: int) -> List[int]:
    """Row ``row`` of the systematic generator ``[I_k ; C]``.

    Rows ``0..k-1`` are data (identity); rows ``k..k+m-1`` are parity.
    """
    if row < k:
        return [1 if col == row else 0 for col in range(k)]
    return [coding_coefficient(m, row - k, i) for i in range(k)]


def gf_matrix_invert(matrix: Sequence[Sequence[int]]) -> List[List[int]]:
    """Gauss–Jordan inverse of a square matrix over GF(256)."""
    n = len(matrix)
    aug = [list(row) + [1 if c == r else 0 for c in range(n)]
           for r, row in enumerate(matrix)]
    for col in range(n):
        pivot = next((r for r in range(col, n) if aug[r][col]), None)
        if pivot is None:
            raise ValueError("matrix is singular over GF(256)")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_pivot = gf_inv(aug[col][col])
        if inv_pivot != 1:
            aug[col] = [gf_mul(v, inv_pivot) for v in aug[col]]
        for r in range(n):
            factor = aug[r][col]
            if r == col or factor == 0:
                continue
            aug[r] = [v ^ gf_mul(factor, p)
                      for v, p in zip(aug[r], aug[col])]
    return [row[n:] for row in aug]


_DECODE_CACHE: Dict[Tuple[int, int, Tuple[int, ...]], List[List[int]]] = {}


def decode_matrix(k: int, m: int,
                  rows: Tuple[int, ...]) -> List[List[int]]:
    """Inverse of the generator restricted to survivor ``rows``.

    ``rows`` is a sorted tuple of ``k`` distinct generator row indices
    (``< k`` data, ``>= k`` parity). Row ``t`` of the result expresses
    data image ``t`` as a combination of the survivors, in ``rows``
    order. Cached: degraded reads over the same erasure pattern pay
    the Gauss–Jordan solve once.
    """
    key = (k, m, rows)
    inverse = _DECODE_CACHE.get(key)
    if inverse is None:
        inverse = gf_matrix_invert([generator_row(k, m, row)
                                    for row in rows])
        _DECODE_CACHE[key] = inverse
    return inverse


def _combine(coefficients: Iterable[int], images: Sequence[bytes],
             length: int) -> bytes:
    """``sum_i coefficients[i] * images[i]`` padded to ``length``."""
    acc = 0
    for coefficient, image in zip(coefficients, images):
        if coefficient == 0:
            continue
        if coefficient == 1:
            acc ^= int.from_bytes(image, "little")
        else:
            acc ^= int.from_bytes(
                bytes(image).translate(mul_table(coefficient)), "little")
    return acc.to_bytes(length, "little")


def decode_data(k: int, m: int, present: Dict[int, bytes]) -> Dict[int, bytes]:
    """Recover every erased data image of a stripe.

    ``present`` maps generator row indices to their bytes: index
    ``i < k`` is data image ``i``; index ``k + j`` is parity slot
    ``j``'s *payload*. At least ``k`` rows must be present. Returns
    ``{data_index: image}`` for the erased data rows, each padded to
    the longest survivor (trailing zeros, which fragment headers make
    harmless) — byte-identical to the XOR recovery for ``m == 1``.
    """
    erased = [i for i in range(k) if i not in present]
    if not erased:
        return {}
    rows = tuple(sorted(present))[:k]
    if len(rows) < k:
        raise ValueError(
            "%d survivors cannot rebuild a %d-data stripe" % (len(rows), k))
    inverse = decode_matrix(k, m, rows)
    survivors = [present[row] for row in rows]
    length = max(len(image) for image in survivors)
    return {target: _combine(inverse[target], survivors, length)
            for target in erased}


# ----------------------------------------------------------------------
# Incremental accumulators (the write-behind window's running parity)
# ----------------------------------------------------------------------

class XorAccumulator:
    """Engine-shaped wrapper around :class:`ParityAccumulator`.

    Single parity ignores which data member a range came from, so this
    delegates straight to the original accumulator — same buckets, same
    ``consumed`` accounting, same emitted bytes.
    """

    def __init__(self) -> None:
        self._acc = ParityAccumulator()

    @property
    def consumed(self) -> int:
        return self._acc.consumed

    def add_range(self, data_index: int, offset: int, data) -> None:
        self._acc.add_range(offset, data)

    def payloads(self) -> List[bytes]:
        return [self._acc.parity_payload()]


class RSAccumulator:
    """Running Reed–Solomon parity, one XOR accumulator per slot.

    Each fold scales the range by the slot's coefficient for that data
    member and XORs it into the slot's buckets; coefficient-1 folds
    (every fold of slot 0, and all of column 0) skip the translate.
    ``consumed`` counts every byte folded into every slot, so the
    layer's cost accounting scales with ``m`` exactly as the work does.
    """

    def __init__(self, parity_count: int) -> None:
        self._m = parity_count
        self._slots = [ParityAccumulator() for _ in range(parity_count)]

    @property
    def consumed(self) -> int:
        return sum(slot.consumed for slot in self._slots)

    def add_range(self, data_index: int, offset: int, data) -> None:
        raw: Optional[bytes] = None
        for j, slot in enumerate(self._slots):
            coefficient = coding_coefficient(self._m, j, data_index)
            if coefficient == 1:
                slot.add_range(offset, data)
            elif coefficient:
                if raw is None:
                    raw = bytes(data)
                slot.add_range(offset, raw.translate(mul_table(coefficient)))

    def payloads(self) -> List[bytes]:
        return [slot.parity_payload() for slot in self._slots]


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------

class XorEngine:
    """The original single-parity XOR path, bit-identical."""

    name = "xor"
    parity_count = 1

    def encode(self, data_images: Sequence[bytes]) -> List[bytes]:
        return [parity_of_fast(data_images)]

    def encode_slot(self, data_images: Sequence[bytes], slot: int) -> bytes:
        if slot != 0:
            raise ValueError("XOR has a single parity slot")
        return parity_of_fast(data_images)

    def make_accumulator(self) -> XorAccumulator:
        return XorAccumulator()

    def decode_data(self, k: int,
                    present: Dict[int, bytes]) -> Dict[int, bytes]:
        return decode_data(k, 1, present)


class ReedSolomonEngine:
    """Systematic Reed–Solomon over GF(256), any ``m`` parity slots."""

    name = "rs"

    def __init__(self, parity_count: int) -> None:
        if parity_count < 1:
            raise ConfigError("Reed-Solomon needs at least one parity slot")
        self.parity_count = parity_count

    def encode(self, data_images: Sequence[bytes]) -> List[bytes]:
        if not data_images:
            return [b""] * self.parity_count
        length = max(len(image) for image in data_images)
        return [self.encode_slot(data_images, slot, _length=length)
                for slot in range(self.parity_count)]

    def encode_slot(self, data_images: Sequence[bytes], slot: int,
                    _length: Optional[int] = None) -> bytes:
        if not 0 <= slot < self.parity_count:
            raise ValueError("parity slot %d out of range" % slot)
        if not data_images:
            return b""
        length = _length if _length is not None else \
            max(len(image) for image in data_images)
        coefficients = [coding_coefficient(self.parity_count, slot, i)
                        for i in range(len(data_images))]
        return _combine(coefficients, data_images, length)

    def make_accumulator(self) -> RSAccumulator:
        return RSAccumulator(self.parity_count)

    def decode_data(self, k: int,
                    present: Dict[int, bytes]) -> Dict[int, bytes]:
        return decode_data(k, self.parity_count, present)


CODING_SCHEMES = ("xor", "rs")


def make_engine(coding: str, parity_count: int):
    """The engine for a config's ``(coding, parity_fragments)`` pair.

    Returns ``None`` for ``parity_count == 0`` (replication-free
    stripes have nothing to encode).
    """
    if parity_count <= 0:
        return None
    if coding == "xor":
        if parity_count > 1:
            raise ConfigError(
                "xor coding supports a single parity fragment; "
                "use coding='rs' for parity_fragments=%d" % parity_count)
        return XorEngine()
    if coding == "rs":
        return ReedSolomonEngine(parity_count)
    raise ConfigError("unknown coding scheme %r (choose from %s)"
                      % (coding, ", ".join(CODING_SCHEMES)))


def engine_for_stripe(stripe_width: int, parity_index: int):
    """The engine a *reader* needs, from stripe geometry alone.

    ``parity_index`` is the first parity member's stripe index (the
    header field), so ``m = width - parity_index``. The normalized
    matrix makes ``m == 1`` literally XOR, so no scheme tag is stored
    anywhere — geometry is sufficient. Returns ``None`` for
    replication-free stripes.
    """
    from repro.log.fragment import NO_PARITY

    if parity_index == NO_PARITY or parity_index >= stripe_width:
        return None
    parity_count = stripe_width - parity_index
    if parity_count == 1:
        return XorEngine()
    return ReedSolomonEngine(parity_count)
