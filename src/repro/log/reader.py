"""Sequential log reading: locate, fetch, and parse fragments in order.

Used by crash recovery (rollforward) and by the cleaner. The reader
walks FIDs in sequence, learning fragment→server placements from stripe
descriptors as it goes so that only one broadcast per stripe is usually
needed. Unavailable fragments are reconstructed transparently; a
fragment that is absent everywhere *and* unreconstructable marks the end
of the log (or, mid-log, the boundary of an incompletely flushed tail —
rollforward stops there, yielding a consistent prefix of the record
stream).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import CorruptFragmentError, ReconstructionError, SwarmError
from repro.log.fragment import Fragment
from repro.log.location import LocationCache
from repro.log.records import Record
from repro.log.reconstruct import Reconstructor
from repro.rpc import messages as m


class FragmentLocator:
    """Caches fragment→server placements, learned from headers.

    A thin wrapper (kept for API stability) around the shared
    :class:`LocationCache`; pass ``locations`` to share placements with
    a log layer or reconstructor.
    """

    def __init__(self, transport, principal: str = "",
                 locations: Optional[LocationCache] = None) -> None:
        self.transport = transport
        self.principal = principal
        self.locations = locations if locations is not None else \
            LocationCache(transport, principal)

    def locate(self, fid: int) -> Optional[str]:
        """Best-known server for ``fid``; broadcasts on a cache miss."""
        return self.locations.locate(fid)

    def learn(self, fragment: Fragment) -> None:
        """Absorb the stripe descriptor of a fetched fragment."""
        self.locations.learn(fragment.header)

    def forget(self, fid: int) -> None:
        """Drop a placement (e.g. after observing a failure)."""
        self.locations.evict(fid)


class LogReader:
    """Reads one client's log in FID order."""

    def __init__(self, transport, principal: str = "",
                 locations: Optional[LocationCache] = None,
                 retry_policy=None, verify: bool = False) -> None:
        from repro.rpc.retry import wrap_transport

        transport = wrap_transport(transport, retry_policy)
        self.transport = transport
        self.principal = principal
        self.verify = verify
        self.locator = FragmentLocator(transport, principal, locations)
        # Reconstruction shares the same placement cache, so stripe
        # descriptors learned either way serve both paths. The policy is
        # not passed down: self.transport already retries, and wrapping
        # twice would square the attempt count.
        self.reconstructor = Reconstructor(
            transport, principal, locations=self.locator.locations,
            verify=verify)

    def read_fragment(self, fid: int,
                      prefetched=None) -> Optional[Fragment]:
        """Fetch and parse fragment ``fid``; None if it does not exist.

        Uses a ``prefetched`` completion (an in-flight retrieve started
        by :meth:`prefetch`) when one is given, then the cached/learned
        placement, then a broadcast, then reconstruction from the
        stripe. In verified mode a direct fetch that fails its payload
        checksum also falls through to reconstruction — rollforward
        must never replay corrupt records.
        """
        image: Optional[bytes] = None
        if prefetched is not None:
            image = self._prefetched_image(fid, prefetched)
        if image is None:
            server_id = self.locator.locate(fid)
            if server_id is not None:
                try:
                    response = self.transport.call(
                        server_id, m.RetrieveRequest(
                            fid=fid, principal=self.principal))
                    image = response.payload
                    if self.verify:
                        Fragment.decode(image, verify_crc=True)
                except CorruptFragmentError:
                    self.locator.forget(fid)
                    image = None
                except SwarmError:
                    self.locator.forget(fid)
        if image is None:
            try:
                image = self.reconstructor.fetch(fid)
            except ReconstructionError:
                return None
        fragment = Fragment.decode(image)
        self.locator.learn(fragment)
        return fragment

    def prefetch(self, fid: int):
        """Start fetching ``fid`` without waiting; None when unknown.

        Only fragments with an already-cached placement are prefetched
        (placements are learned from each stripe descriptor as the
        reader walks, so the common rollforward case qualifies); an
        unknown placement would cost a broadcast that the normal path
        may never need — e.g. one past the end of the log.
        """
        server_id = self.locator.locations.get(fid)
        if server_id is None:
            return None
        future = self.transport.submit(server_id, m.RetrieveRequest(
            fid=fid, principal=self.principal))
        if not future.triggered:
            # An abandoned prefetch must not re-raise out of somebody
            # else's sim.run(); a waiter keeps its failure contained.
            add_callback = getattr(future, "add_callback", None)
            if add_callback is not None:
                add_callback(lambda _event: None)
        return future

    def _prefetched_image(self, fid: int, prefetched) -> Optional[bytes]:
        """Resolve a prefetch started by :meth:`prefetch`."""
        from repro.rpc.completion import gather

        try:
            future = gather([prefetched])[0]
        except SwarmError:
            return None  # cannot drive it here; fall back to a fresh call
        if not future.ok:
            if not isinstance(future.exception, SwarmError):
                raise future.exception
            self.locator.forget(fid)
            return None
        image = future.value.payload
        if self.verify:
            try:
                Fragment.decode(image, verify_crc=True)
            except CorruptFragmentError:
                self.locator.forget(fid)
                return None
        return image

    def fragments_from(self, start_fid: int) -> Iterator[Fragment]:
        """Yield fragments starting at ``start_fid`` until the log ends.

        Streams: while the caller parses fragment ``fid``, the retrieve
        for ``fid+1`` is already in flight (its placement is known from
        the stripe descriptor just learned), so rollforward overlaps
        parsing with the next network round trip instead of strictly
        alternating them.
        """
        fid = start_fid
        prefetched = None
        while True:
            fragment = self.read_fragment(fid, prefetched=prefetched)
            if fragment is None:
                return
            fid += 1
            prefetched = self.prefetch(fid)
            yield fragment

    def records_from(self, start_fid: int, min_lsn: int = 0) -> List[Record]:
        """All records in fragments >= ``start_fid`` with LSN > ``min_lsn``,
        in LSN (= log) order."""
        records: List[Record] = []
        for fragment in self.fragments_from(start_fid):
            for record in fragment.records():
                if record.lsn > min_lsn:
                    records.append(record)
        records.sort(key=lambda record: record.lsn)
        return records
