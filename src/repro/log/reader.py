"""Sequential log reading: locate, fetch, and parse fragments in order.

Used by crash recovery (rollforward) and by the cleaner. The reader
walks FIDs in sequence, learning fragment→server placements from stripe
descriptors as it goes so that only one broadcast per stripe is usually
needed. Unavailable fragments are reconstructed transparently; a
fragment that is absent everywhere *and* unreconstructable marks the end
of the log (or, mid-log, the boundary of an incompletely flushed tail —
rollforward stops there, yielding a consistent prefix of the record
stream).

Read-ahead is windowed, mirroring the write path's write-behind: up to
``max_inflight`` retrieves travel at once, dispatched as one
:meth:`~repro.rpc.transport.Transport.submit_many` scatter so the
simulated testbed charges the batch's *overlapped* elapsed time, and
consumed strictly in FID order. A degraded fragment mid-window falls
back to parity reconstruction without stalling its neighbors, and a
prefetch the reader abandons still reports its failure — placement
eviction plus a health-monitor observation — instead of vanishing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional

from repro.errors import (
    ConfigError,
    CorruptFragmentError,
    ReconstructionError,
    SwarmError,
)
from repro.log.fragment import Fragment
from repro.log.location import LocationCache
from repro.log.records import Record
from repro.log.reconstruct import Reconstructor
from repro.rpc import messages as m


class FragmentLocator:
    """Caches fragment→server placements, learned from headers.

    A thin wrapper (kept for API stability) around the shared
    :class:`LocationCache`; pass ``locations`` to share placements with
    a log layer or reconstructor.
    """

    def __init__(self, transport, principal: str = "",
                 locations: Optional[LocationCache] = None) -> None:
        self.transport = transport
        self.principal = principal
        self.locations = locations if locations is not None else \
            LocationCache(transport, principal)

    def locate(self, fid: int) -> Optional[str]:
        """Best-known server for ``fid``; broadcasts on a cache miss."""
        return self.locations.locate(fid)

    def learn(self, fragment: Fragment) -> None:
        """Absorb the stripe descriptor of a fetched fragment."""
        self.locations.learn(fragment.header)

    def forget(self, fid: int) -> None:
        """Drop a placement (e.g. after observing a failure)."""
        self.locations.evict(fid)


class LogReader:
    """Reads one client's log in FID order."""

    def __init__(self, transport, principal: str = "",
                 locations: Optional[LocationCache] = None,
                 retry_policy=None, verify: bool = False,
                 max_inflight: int = 1, monitor=None) -> None:
        from repro.rpc.retry import wrap_transport

        if max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        transport = wrap_transport(transport, retry_policy)
        self.transport = transport
        self.principal = principal
        self.verify = verify
        self.max_inflight = max_inflight
        # Failed prefetches feed the failure detector exactly like
        # synchronous failures would; the counters are per server.
        self.monitor = monitor
        self.prefetch_failures: Dict[str, int] = {}
        self.locator = FragmentLocator(transport, principal, locations)
        # Reconstruction shares the same placement cache, so stripe
        # descriptors learned either way serve both paths. The policy is
        # not passed down: self.transport already retries, and wrapping
        # twice would square the attempt count.
        self.reconstructor = Reconstructor(
            transport, principal, locations=self.locator.locations,
            verify=verify)

    def read_fragment(self, fid: int,
                      prefetched=None) -> Optional[Fragment]:
        """Fetch and parse fragment ``fid``; None if it does not exist.

        Uses a ``prefetched`` completion (an in-flight retrieve started
        by :meth:`prefetch`, or a ``(server_id, future)`` pair from the
        read-ahead window) when one is given, then the cached/learned
        placement, then a broadcast, then reconstruction from the
        stripe. In verified mode a direct fetch that fails its payload
        checksum also falls through to reconstruction — rollforward
        must never replay corrupt records.
        """
        image: Optional[bytes] = None
        if prefetched is not None:
            server_id = None
            if isinstance(prefetched, tuple):
                server_id, prefetched = prefetched
            image = self._prefetched_image(fid, prefetched, server_id)
        if image is None:
            server_id = self.locator.locate(fid)
            if server_id is not None:
                try:
                    response = self.transport.call(
                        server_id, m.RetrieveRequest(
                            fid=fid, principal=self.principal))
                    image = response.payload
                    if self.verify:
                        Fragment.decode(image, verify_crc=True)
                except CorruptFragmentError:
                    self.locator.forget(fid)
                    image = None
                except SwarmError:
                    self.locator.forget(fid)
        if image is None:
            try:
                image = self.reconstructor.fetch(fid)
            except ReconstructionError:
                return None
            fragment = Fragment.decode(image)
        else:
            try:
                fragment = Fragment.decode(image)
            except CorruptFragmentError:
                # Unverified fetch of an undecodable image — e.g. a torn
                # store a restarted server still serves. Treat it like a
                # corrupt verified read: forget the placement and rebuild
                # the true image from the stripe's parity. Skip
                # ``fetch``'s direct-retrieve retry — a broadcast would
                # just find the same corrupt copy again.
                self.locator.forget(fid)
                try:
                    image = self.reconstructor.reconstruct(fid)
                except ReconstructionError:
                    return None
                fragment = Fragment.decode(image)
        self.locator.learn(fragment)
        return fragment

    def prefetch(self, fid: int):
        """Start fetching ``fid`` without waiting; None when unknown.

        Only fragments with an already-cached placement are prefetched
        (placements are learned from each stripe descriptor as the
        reader walks, so the common rollforward case qualifies); an
        unknown placement would cost a broadcast that the normal path
        may never need — e.g. one past the end of the log.
        """
        server_id = self.locator.locations.get(fid)
        if server_id is None:
            return None
        future = self.transport.submit(server_id, m.RetrieveRequest(
            fid=fid, principal=self.principal))
        if not future.triggered:
            # An abandoned prefetch must not re-raise out of somebody
            # else's sim.run(); a waiter keeps its failure contained.
            add_callback = getattr(future, "add_callback", None)
            if add_callback is not None:
                add_callback(lambda _event: None)
        return future

    def _prefetched_image(self, fid: int, prefetched,
                          server_id: Optional[str] = None) -> Optional[bytes]:
        """Resolve a prefetch started by :meth:`prefetch` or the window."""
        from repro.rpc.completion import gather

        try:
            future = gather([prefetched])[0]
        except SwarmError:
            return None  # cannot drive it here; fall back to a fresh call
        if not future.ok:
            if not isinstance(future.exception, SwarmError):
                raise future.exception
            self._note_prefetch_failure(fid, server_id, future.exception)
            return None
        image = future.value.payload
        if self.verify:
            try:
                Fragment.decode(image, verify_crc=True)
            except CorruptFragmentError:
                self.locator.forget(fid)
                return None
        return image

    def _note_prefetch_failure(self, fid: int, server_id: Optional[str],
                               exc: SwarmError) -> None:
        """Account one failed prefetched retrieve.

        The placement is evicted (it pointed somewhere that could not
        answer) and the outcome is folded into the health monitor the
        same way the retry layer scores synchronous calls: a definitive
        application error is still proof of life, only transient
        unreachability counts against the server.
        """
        from repro.rpc.retry import TRANSIENT_ERRORS

        self.locator.forget(fid)
        if server_id is None:
            return
        self.prefetch_failures[server_id] = \
            self.prefetch_failures.get(server_id, 0) + 1
        if self.monitor is not None:
            self.monitor.observe(
                server_id, ok=not isinstance(exc, TRANSIENT_ERRORS))

    def _refill_window(self, pending: "OrderedDict", next_fid: int) -> None:
        """Dispatch the next read-ahead window as one scatter.

        Prefetches the contiguous run of fids from ``next_fid`` whose
        placements are already cached (learned from stripe descriptors
        as the reader walks), up to ``max_inflight`` deep, in a single
        ``submit_many`` — on the simulated transport the batch is
        charged its overlapped elapsed time, not one round trip per
        fragment. The run stops at the first unknown placement:
        consumption is strictly in order, so fetching past a gap would
        race a broadcast the gap itself may obviate.
        """
        plan = []
        fid = next_fid
        while len(plan) < self.max_inflight:
            server_id = self.locator.locations.get(fid)
            if server_id is None:
                break
            plan.append((fid, server_id))
            fid += 1
        if not plan:
            return
        futures = self.transport.submit_many(
            [(server_id, m.RetrieveRequest(fid=fid, principal=self.principal))
             for fid, server_id in plan])
        for (fid, server_id), future in zip(plan, futures):
            if not future.triggered:
                # Abandoned or failed prefetches must not re-raise out
                # of somebody else's sim.run(); waiters contain them.
                add_callback = getattr(future, "add_callback", None)
                if add_callback is not None:
                    add_callback(lambda _event: None)
            pending[fid] = (server_id, future)

    def _abandon_window(self, pending: "OrderedDict") -> None:
        """Release prefetches the caller will never consume.

        Cancellation must not mask errors: a prefetch that already
        failed still evicts its placement and feeds the failure
        detector, and a non-protocol exception (a programming error)
        is re-raised rather than swallowed.
        """
        try:
            for fid, (server_id, future) in pending.items():
                if not future.triggered or future.ok:
                    continue
                if not isinstance(future.exception, SwarmError):
                    raise future.exception
                self._note_prefetch_failure(fid, server_id, future.exception)
        finally:
            pending.clear()

    def fragments_from(self, start_fid: int) -> Iterator[Fragment]:
        """Yield fragments starting at ``start_fid`` until the log ends.

        Streams with bounded read-ahead: while the caller parses
        fragment ``fid``, retrieves for up to ``max_inflight`` of its
        successors are already in flight (their placements known from
        the stripe descriptors just learned). The window refills as a
        batch when it drains and is consumed strictly in FID order;
        ``max_inflight=1`` is exactly the old one-fragment-ahead
        prefetch. A fragment whose prefetch failed falls back to the
        locate/broadcast/reconstruct ladder without disturbing the rest
        of the window, and in-flight prefetches left over when the log
        ends (or the caller stops early) are abandoned without masking
        their errors.
        """
        pending: "OrderedDict" = OrderedDict()
        fid = start_fid
        try:
            while True:
                fragment = self.read_fragment(
                    fid, prefetched=pending.pop(fid, None))
                if fragment is None:
                    return
                fid += 1
                if not pending:
                    self._refill_window(pending, fid)
                yield fragment
        finally:
            self._abandon_window(pending)

    def records_from(self, start_fid: int, min_lsn: int = 0) -> List[Record]:
        """All records in fragments >= ``start_fid`` with LSN > ``min_lsn``,
        in LSN (= log) order."""
        records: List[Record] = []
        for fragment in self.fragments_from(start_fid):
            for record in fragment.records():
                if record.lsn > min_lsn:
                    records.append(record)
        records.sort(key=lambda record: record.lsn)
        return records
