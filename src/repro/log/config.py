"""Log-layer configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigError
from repro.log.fragment import MAX_STRIPE_WIDTH
from repro.server.config import DEFAULT_FRAGMENT_SIZE


@dataclass(frozen=True)
class LogConfig:
    """Per-client log parameters.

    Attributes
    ----------
    client_id:
        This client's numeric identity; embedded in the high bits of
        every FID the client allocates, so clients never need to
        coordinate FID assignment.
    fragment_size:
        Fragment capacity in bytes (1 MB in the prototype); must match
        the servers' slot size.
    principal:
        Name presented for ACL checks (defaults to ``client-<id>``).
    max_outstanding_fragments:
        Flow-control hint: simulated drivers keep at most this many
        fragment stores in flight ("rudimentary flow control", §2.2.2).
    preallocate_stripes:
        When True, the log layer issues the server ``preallocate``
        operation for every member of a stripe before transferring any
        data, guaranteeing space for the whole stripe up front (§2.4
        lists preallocation among the server's operations).
    """

    client_id: int
    fragment_size: int = DEFAULT_FRAGMENT_SIZE
    principal: str = ""
    max_outstanding_fragments: int = 4
    preallocate_stripes: bool = False
    fragment_aid: int = 0
    """ACL id to tag every stored fragment with (0 = untagged).

    When set, the whole byte range of each fragment this client stores
    is protected by that ACL (§2.4.2): servers with enforcement on will
    refuse reads/deletes from principals outside the ACL. Create the
    ACL on every server in the stripe group first.
    """
    spare_servers: Tuple[str, ...] = ()
    """Standby servers the auto-reform policy may draft into the stripe
    group when a member is declared dead. Order is preference order; a
    spare is used at most once. Empty means a dead member is dropped
    and the group shrinks (down to the two-server parity minimum)."""
    max_inflight_stripes: int = 2
    """Write-behind window: how many closed stripes may have stores in
    flight at once. Stripe N+1 builds and dispatches while stripe N's
    stores travel; the window filling up applies backpressure at the
    next stripe close. 1 restores the strict stripe-at-a-time barrier."""
    pipeline_stores: bool = True
    """Dispatch a stripe's fragment stores as one ``submit_many`` plan
    (overlapped in sim deferred mode) instead of one submit at a time."""
    group_commit_bytes: int = 4096
    """Coalesce service records smaller than this into a client-side
    batch flushed before the next block append, checkpoint, or flush.
    0 disables group commit (every record hits a builder immediately)."""
    group_commit_latency_ms: float = 0.0
    """Adaptive group commit: flush a partial record batch once it has
    been open this many milliseconds, even though ``group_commit_bytes``
    has not filled, so a quiet real-wire client does not stall its last
    records indefinitely. Staleness is checked at the next record
    append, or on demand via ``LogLayer.poll_group_commit()`` (a truly
    idle client has no other trigger). 0 disables the latency bound —
    the default, because chaos replay digests depend on batching
    decisions being pure functions of the workload, not of wall time."""
    max_inflight_reads: int = 2
    """Read-ahead window: how many fragment retrieves a sequential
    reader keeps in flight while consuming the log in order. Mirrors
    ``max_inflight_stripes`` on the read side; 1 restores the strict
    one-fragment-ahead prefetch."""
    parity_fragments: int = 1
    """Parity members per stripe (``m`` of the k-of-n code). 1 is the
    paper's rotated single parity; 0 writes replication-free stripes
    (no redundancy); 2+ requires ``coding="rs"`` and tolerates that
    many simultaneous member losses per stripe. Clamped at stripe
    close so a group always keeps at least one data member."""
    coding: str = "xor"
    """Erasure-coding engine: ``"xor"`` (single parity, the original
    byte-identical path) or ``"rs"`` (Reed-Solomon over GF(256), any
    ``parity_fragments``)."""
    location_cache_entries: int = 0
    """Size bound of the client's fragment-location cache (entries).
    0 means unbounded (the original behavior). On a large fleet the
    cache grows with every stripe ever written or located, so bounded
    deployments evict least-recently-used placements; evicted entries
    are re-learned through the broadcast ``holds`` query on demand."""

    def __post_init__(self) -> None:
        if self.client_id < 0:
            raise ConfigError("client_id must be non-negative")
        if self.fragment_size < 4096:
            raise ConfigError("fragment_size unreasonably small")
        if self.max_outstanding_fragments < 1:
            raise ConfigError("max_outstanding_fragments must be >= 1")
        if self.max_inflight_stripes < 1:
            raise ConfigError("max_inflight_stripes must be >= 1")
        if self.max_inflight_reads < 1:
            raise ConfigError("max_inflight_reads must be >= 1")
        if self.group_commit_bytes < 0:
            raise ConfigError("group_commit_bytes must be >= 0")
        if self.group_commit_latency_ms < 0:
            raise ConfigError("group_commit_latency_ms must be >= 0")
        if self.location_cache_entries < 0:
            raise ConfigError("location_cache_entries must be >= 0")
        if len(set(self.spare_servers)) != len(self.spare_servers):
            raise ConfigError("duplicate server in spare_servers")
        if not 0 <= self.parity_fragments < MAX_STRIPE_WIDTH:
            raise ConfigError("parity_fragments must be in [0, %d)"
                              % MAX_STRIPE_WIDTH)
        if self.coding not in ("xor", "rs"):
            raise ConfigError("unknown coding scheme %r" % (self.coding,))
        if self.coding == "xor" and self.parity_fragments > 1:
            raise ConfigError(
                "xor coding supports at most one parity fragment; use "
                "coding='rs' for parity_fragments=%d" % self.parity_fragments)
        if not self.principal:
            object.__setattr__(self, "principal", "client-%d" % self.client_id)
