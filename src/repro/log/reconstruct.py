"""Client-side fragment reconstruction (§2.4.3).

When a storage server is unavailable, any fragment it held can be
rebuilt from the rest of its stripe. Servers take no part in this —
reconstruction is *transparent to the servers, not the clients*. The
protocol is exactly the paper's:

1. Fragments of a stripe have consecutive FIDs, so for a missing
   fragment N, fragment N−1 or N+1 is in the same stripe. The client
   *broadcasts* to all storage servers asking who holds those FIDs —
   no directory service exists or is needed (Swarm is self-hosting).
2. A located neighbor's header carries the full stripe descriptor:
   base FID, width, and the server of every member.
3. The client fetches the surviving members and XORs them together.
   Parity payloads are defined as the XOR of the data members' whole
   images, so a missing data fragment comes back as a complete,
   parseable image (with harmless zero padding), and a missing parity
   fragment is simply recomputed.

Fault tolerance extensions beyond the paper: pass a
:class:`~repro.rpc.retry.RetryPolicy` and flaky (rather than dead)
servers are retried with backoff before the parity path engages; pass
``verify=True`` and every directly-fetched image is checksum-verified,
so *silent corruption* (a bit flip on the wire or on the platter) is
treated exactly like an unavailable fragment and rebuilt from parity.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import (
    CorruptFragmentError,
    ReconstructionError,
    SwarmError,
    UnrecoverableError,
)
from repro.log.fragment import Fragment, FragmentHeader, make_parity_fragment
from repro.log.location import LocationCache
from repro.log.stripe import recover_data_image
from repro.rpc import messages as m


class Reconstructor:
    """Fetches fragments, reconstructing them from parity when needed.

    Pass ``locations`` to share one :class:`LocationCache` with the log
    layer / reader driving the reconstruction: placements learned here
    (including whole stripe descriptors) then benefit every later read,
    and placements that fail a retrieve are evicted for everyone.
    """

    def __init__(self, transport, principal: str = "",
                 cache: Optional[Dict[int, bytes]] = None,
                 locations: Optional[LocationCache] = None,
                 retry_policy=None, verify: bool = False) -> None:
        if retry_policy is not None:
            from repro.rpc.retry import RetryingTransport

            transport = RetryingTransport(transport, retry_policy)
        self.transport = transport
        self.principal = principal
        self.verify = verify
        self.cache = cache if cache is not None else {}
        self.locations = locations if locations is not None else \
            LocationCache(transport, principal)
        self.reconstructions = 0
        self.corruptions_detected = 0

    # ------------------------------------------------------------------

    def fetch(self, fid: int) -> bytes:
        """Return fragment ``fid``'s image, from a server or by XOR."""
        cached = self.cache.get(fid)
        if cached is not None:
            return cached
        image = self._try_direct(fid)
        if image is not None:
            return image
        image = self.reconstruct(fid)
        self.cache[fid] = image
        return image

    def _try_direct(self, fid: int, server_id: str = None) -> Optional[bytes]:
        if server_id is None:
            server_id = self.locations.locate(fid)
            if server_id is None:
                return None
        try:
            response = self.transport.call(
                server_id, m.RetrieveRequest(fid=fid, principal=self.principal))
        except SwarmError:
            self.locations.evict(fid)
            return None
        image = response.payload
        if self.verify:
            try:
                Fragment.decode(image, verify_crc=True)
            except CorruptFragmentError:
                # The bytes came back but they are not the fragment: a
                # torn store or silent bit rot. Treat exactly like an
                # unavailable fragment — evict the placement and let
                # the parity path rebuild the true image.
                self.corruptions_detected += 1
                self.locations.evict(fid)
                return None
        self.locations.record(fid, server_id)
        return image

    # ------------------------------------------------------------------

    def reconstruct(self, fid: int) -> bytes:
        """Rebuild fragment ``fid`` from the rest of its stripe."""
        header = self._find_stripe_descriptor(fid)
        if header is None:
            raise ReconstructionError(
                "no stripe neighbor of fragment %d found; cannot reconstruct"
                % fid)
        base = header.stripe_base_fid
        width = header.stripe_width
        missing_index = fid - base
        survivors: Dict[int, bytes] = {}
        for index in range(width):
            if index == missing_index:
                continue
            sibling = base + index
            image = self._try_direct(sibling,
                                     server_id=header.server_of_index(index))
            if image is None:
                image = self._try_direct(sibling)
            if image is None:
                raise UnrecoverableError(
                    "two members of stripe %d..%d unavailable or corrupt "
                    "(%d and %d): single parity cannot recover both"
                    % (base, base + width - 1, fid, sibling))
            survivors[index] = image
        self.reconstructions += 1
        if missing_index == header.parity_index:
            return self._rebuild_parity(fid, header, survivors)
        return self._rebuild_data(header, survivors)

    def _find_stripe_descriptor(self, fid: int) -> Optional[FragmentHeader]:
        """Locate a same-stripe neighbor of ``fid`` and return its header."""
        neighbors = [n for n in (fid - 1, fid + 1) if n > 0]
        found = self.locations.locate_many(neighbors)
        for neighbor, server_id in sorted(found.items()):
            image = self._try_direct(neighbor, server_id=server_id)
            if image is None:
                continue
            try:
                header = FragmentHeader.decode(image)
            except SwarmError:
                continue
            if header.stripe_base_fid <= fid < (header.stripe_base_fid
                                                + header.stripe_width):
                self.locations.learn(header)
                # The fragment being reconstructed just failed a direct
                # fetch — do not resurrect its stale placement from the
                # descriptor we learned.
                self.locations.evict(fid)
                return header
        return None

    def _rebuild_data(self, header: FragmentHeader,
                      survivors: Dict[int, bytes]) -> bytes:
        parity_payload = self._parity_payload(
            survivors[header.parity_index])
        data_images = [image for index, image in sorted(survivors.items())
                       if index != header.parity_index]
        image = recover_data_image(parity_payload, data_images)
        # Validate: the recovered bytes must parse as a fragment (and
        # match their recorded payload CRC — an undetected-corrupt
        # survivor would poison the XOR).
        try:
            Fragment.decode(image, verify_crc=True)
        except CorruptFragmentError as exc:
            raise ReconstructionError(
                "reconstructed fragment failed validation (%s); a stripe "
                "member is silently corrupt" % exc) from exc
        return image

    def _rebuild_parity(self, fid: int, header: FragmentHeader,
                        survivors: Dict[int, bytes]) -> bytes:
        data_images = [image for _index, image in sorted(survivors.items())]
        parity = make_parity_fragment(
            fid, header.client_id, data_images, header.stripe_base_fid,
            header.stripe_width, header.parity_index, header.servers)
        return parity.encode()

    @staticmethod
    def _parity_payload(parity_image: bytes) -> bytes:
        fragment = Fragment.decode(parity_image)
        if not fragment.header.is_parity:
            raise ReconstructionError(
                "stripe descriptor named a non-parity fragment as parity")
        return fragment.payload

    # ------------------------------------------------------------------

    def rebuild_to_server(self, fid: int, target_server: str,
                          marked: bool = False) -> None:
        """Reconstruct ``fid`` and store it on ``target_server``.

        Used when repairing the cluster after replacing a failed server:
        clients re-materialize the fragments the dead server held.
        """
        image = self.fetch(fid)
        self.transport.call(target_server, m.StoreRequest(
            fid=fid, data=image, principal=self.principal, marked=marked))
