"""Client-side fragment reconstruction (§2.4.3).

When a storage server is unavailable, any fragment it held can be
rebuilt from the rest of its stripe. Servers take no part in this —
reconstruction is *transparent to the servers, not the clients*. The
protocol is exactly the paper's:

1. Fragments of a stripe have consecutive FIDs, so for a missing
   fragment N, fragment N−1 or N+1 is in the same stripe. The client
   *broadcasts* to all storage servers asking who holds those FIDs —
   no directory service exists or is needed (Swarm is self-hosting).
2. A located neighbor's header carries the full stripe descriptor:
   base FID, width, and the server of every member.
3. The client fetches the surviving members and XORs them together.
   Parity payloads are defined as the XOR of the data members' whole
   images, so a missing data fragment comes back as a complete,
   parseable image (with harmless zero padding), and a missing parity
   fragment is simply recomputed.

Fault tolerance extensions beyond the paper: pass a
:class:`~repro.rpc.retry.RetryPolicy` and flaky (rather than dead)
servers are retried with backoff before the parity path engages; pass
``verify=True`` and every directly-fetched image is checksum-verified,
so *silent corruption* (a bit flip on the wire or on the platter) is
treated exactly like an unavailable fragment and rebuilt from parity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    CorruptFragmentError,
    FragmentExistsError,
    ReconstructionError,
    SwarmError,
    UnrecoverableError,
)
from repro.log.coding import decode_data, engine_for_stripe
from repro.log.fragment import (
    Fragment,
    FragmentHeader,
    MAX_STRIPE_WIDTH,
    NO_PARITY,
    make_parity_fragment,
)
from repro.log.location import LocationCache
from repro.rpc import messages as m
from repro.rpc.completion import scatter_call


class Reconstructor:
    """Fetches fragments, reconstructing them from parity when needed.

    Pass ``locations`` to share one :class:`LocationCache` with the log
    layer / reader driving the reconstruction: placements learned here
    (including whole stripe descriptors) then benefit every later read,
    and placements that fail a retrieve are evicted for everyone.
    """

    def __init__(self, transport, principal: str = "",
                 cache: Optional[Dict[int, bytes]] = None,
                 locations: Optional[LocationCache] = None,
                 retry_policy=None, verify: bool = False) -> None:
        from repro.rpc.retry import wrap_transport

        transport = wrap_transport(transport, retry_policy)
        self.transport = transport
        self.principal = principal
        self.verify = verify
        self.cache = cache if cache is not None else {}
        self.locations = locations if locations is not None else \
            LocationCache(transport, principal)
        self.reconstructions = 0
        self.corruptions_detected = 0

    # ------------------------------------------------------------------

    def fetch(self, fid: int) -> bytes:
        """Return fragment ``fid``'s image, from a server or by XOR."""
        cached = self.cache.get(fid)
        if cached is not None:
            return cached
        image = self._try_direct(fid)
        if image is not None:
            return image
        image = self.reconstruct(fid)
        self.cache[fid] = image
        return image

    def _try_direct(self, fid: int,
                    server_id: Optional[str] = None) -> Optional[bytes]:
        if server_id is None:
            server_id = self.locations.locate(fid)
            if server_id is None:
                return None
        fetched = self._scatter_fetch([(fid, server_id)])
        return fetched.get(fid)

    def _scatter_fetch(self,
                       targets: Sequence[Tuple[int, str]]) -> Dict[int, bytes]:
        """Fetch many whole fragment images in one overlapped scatter.

        ``targets`` pairs each fid with the server believed to hold it;
        all retrieves go out concurrently (§2.1.2 pipelining, applied
        to the read side). Returns ``{fid: image}`` for the fetches
        that succeeded — and, in verified mode, parsed with a matching
        payload CRC. A failed or corrupt fetch evicts its placement and
        is simply absent from the result; callers fall back per
        fragment (re-locate, or rebuild through parity).
        """
        targets = list(targets)
        futures = scatter_call(
            self.transport,
            [(server_id, m.RetrieveRequest(fid=fid, principal=self.principal))
             for fid, server_id in targets])
        images: Dict[int, bytes] = {}
        for (fid, server_id), future in zip(targets, futures):
            if not future.ok:
                if not isinstance(future.exception, SwarmError):
                    raise future.exception
                self.locations.evict(fid)
                continue
            image = future.value.payload
            if self.verify:
                try:
                    Fragment.decode(image, verify_crc=True)
                except CorruptFragmentError:
                    # The bytes came back but they are not the
                    # fragment: a torn store or silent bit rot. Treat
                    # exactly like an unavailable fragment — evict the
                    # placement and let the parity path rebuild the
                    # true image.
                    self.corruptions_detected += 1
                    self.locations.evict(fid)
                    continue
            self.locations.record(fid, server_id)
            images[fid] = image
        return images

    # ------------------------------------------------------------------

    def reconstruct(self, fid: int) -> bytes:
        """Rebuild fragment ``fid`` from the rest of its stripe.

        All survivor fetches go out in one scatter — the whole rebuild
        costs roughly one overlapped round trip (plus the descriptor
        probe), not width−1 serial ones. Probed neighbor images are
        reused as survivors rather than fetched twice.

        Any erasure pattern of at most ``m`` members (``m`` = the
        stripe's parity count, from its descriptor) is recoverable:
        missing siblings discovered along the way simply join the
        erased set handed to the coding engine's decoder.
        """
        header, probed = self._find_stripe_descriptor(fid)
        if header is None:
            raise ReconstructionError(
                "no stripe neighbor of fragment %d found; cannot reconstruct"
                % fid)
        base = header.stripe_base_fid
        width = header.stripe_width
        if header.parity_index == NO_PARITY or header.parity_index >= width:
            nparity = 0
        else:
            nparity = width - header.parity_index
        missing_index = fid - base
        survivors: Dict[int, bytes] = {}
        wanted: List[Tuple[int, str]] = []
        for index in range(width):
            if index == missing_index:
                continue
            sibling = base + index
            image = probed.get(sibling)
            if image is not None:
                survivors[index] = image
            else:
                wanted.append((sibling, header.server_of_index(index)))
        fetched = self._scatter_fetch(wanted)
        erased = {missing_index}
        for sibling, _descriptor_server in wanted:
            image = fetched.get(sibling)
            if image is None:
                # The descriptor's placement failed: re-locate through
                # a broadcast before declaring the member gone.
                image = self._try_direct(sibling)
            if image is None:
                erased.add(sibling - base)
                if len(erased) > nparity:
                    if nparity == 1:
                        raise UnrecoverableError(
                            "two members of stripe %d..%d unavailable or "
                            "corrupt (%d and %d): single parity cannot "
                            "recover both"
                            % (base, base + width - 1, fid, sibling))
                    raise UnrecoverableError(
                        "%d members of stripe %d..%d unavailable or corrupt "
                        "(%s): %d parity fragment(s) cannot recover them"
                        % (len(erased), base, base + width - 1,
                           ", ".join(str(base + i) for i in sorted(erased)),
                           nparity))
            else:
                survivors[sibling - base] = image
        self.reconstructions += 1
        rebuilt = self._decode_erased(header, survivors, erased)
        for index, image in rebuilt.items():
            # A multi-erasure decode rebuilds every missing member in
            # one solve; cache the siblings so a scan that trips over
            # the next dead fragment of the same stripe pays nothing.
            self.cache.setdefault(base + index, image)
        return rebuilt[missing_index]

    def _find_stripe_descriptor(
            self, fid: int,
    ) -> Tuple[Optional[FragmentHeader], Dict[int, bytes]]:
        """Race ``fid``'s neighbors for a stripe descriptor.

        Fragments of a stripe have consecutive FIDs, so some fragment
        within ``MAX_STRIPE_WIDTH − 1`` of ``fid`` carries the
        descriptor. The nearest candidates (``fid±1``) are fetched
        *concurrently* and the first (lowest-fid) parseable same-stripe
        header wins — deterministically, so a replayed chaos schedule
        makes identical choices. When both immediate neighbors are down
        too (multi-erasure stripes), the probe ring widens one distance
        at a time — the single-failure fast path costs exactly the two
        probes it always did. Returns the header (None when no
        neighbor answers) plus every probed image, keyed by fid, so
        the caller can reuse in-stripe neighbors as survivors instead
        of fetching them a second time.
        """
        probed_all: Dict[int, bytes] = {}
        for distance in range(1, MAX_STRIPE_WIDTH):
            neighbors = [n for n in (fid - distance, fid + distance)
                         if n > 0 and n not in probed_all]
            if not neighbors:
                continue
            found = self.locations.locate_many(neighbors)
            probed = self._scatter_fetch(sorted(found.items()))
            probed_all.update(probed)
            for neighbor in sorted(probed):
                try:
                    header = FragmentHeader.decode(probed[neighbor])
                except SwarmError:
                    continue
                if header.stripe_base_fid <= fid < (header.stripe_base_fid
                                                    + header.stripe_width):
                    self.locations.learn(header)
                    # The fragment being reconstructed just failed a
                    # direct fetch — do not resurrect its stale
                    # placement from the descriptor we learned.
                    self.locations.evict(fid)
                    return header, probed_all
        return None, probed_all

    def _decode_erased(self, header: FragmentHeader,
                       survivors: Dict[int, bytes],
                       erased) -> Dict[int, bytes]:
        """Rebuild every erased member's image from the survivors.

        ``survivors`` maps stripe indices to images; ``erased`` is the
        set of missing stripe indices (at most the stripe's parity
        count). Data members are recovered through the coding engine's
        cached decode matrices and validated (parse + payload CRC — an
        undetected-corrupt survivor would poison the combine); missing
        parity members are re-encoded from the full set of data images
        afterwards.
        """
        base = header.stripe_base_fid
        width = header.stripe_width
        engine = engine_for_stripe(width, header.parity_index)
        if engine is None:
            raise UnrecoverableError(
                "stripe %d..%d was written without parity; member %s "
                "cannot be reconstructed"
                % (base, base + width - 1,
                   ", ".join(str(base + i) for i in sorted(erased))))
        ndata = header.parity_index
        present: Dict[int, bytes] = {}
        for index, image in survivors.items():
            present[index] = (self._parity_payload(image)
                              if index >= ndata else image)
        recovered = decode_data(ndata, engine.parity_count, present)
        rebuilt: Dict[int, bytes] = {}
        for index, image in recovered.items():
            try:
                Fragment.decode(image, verify_crc=True)
            except CorruptFragmentError as exc:
                raise ReconstructionError(
                    "reconstructed fragment failed validation (%s); a stripe "
                    "member is silently corrupt" % exc) from exc
            rebuilt[index] = image
        erased_parity = sorted(i for i in erased if i >= ndata)
        if erased_parity:
            data_images = [survivors[i] if i in survivors else rebuilt[i]
                           for i in range(ndata)]
            for index in erased_parity:
                payload = engine.encode_slot(data_images, index - ndata)
                parity = make_parity_fragment(
                    base + index, header.client_id, data_images, base,
                    width, index, header.servers, payload=payload,
                    parity_index=ndata)
                rebuilt[index] = parity.encode()
        return rebuilt

    @staticmethod
    def _parity_payload(parity_image: bytes) -> bytes:
        fragment = Fragment.decode(parity_image)
        if not fragment.header.is_parity:
            raise ReconstructionError(
                "stripe descriptor named a non-parity fragment as parity")
        return fragment.payload

    # ------------------------------------------------------------------

    def rebuild_to_server(self, fid: int, target_server: str) -> bytes:
        """Reconstruct ``fid``, store it on ``target_server``, verify it.

        Used when repairing the cluster after replacing a failed server:
        clients re-materialize the fragments the dead server held. The
        rewrite is careful on three counts:

        * **Atomic-store path** — the slot is preallocated first, so
          the target either commits the whole image or holds an empty
          reservation; a crash mid-repair never leaves a torn fragment
          behind. A target already holding different bytes under this
          fid (a stale or damaged copy) is deleted and rewritten whole.
        * **Marked flag from the header** — a checkpoint fragment's
          ``marked`` bit is part of the data (recovery finds
          checkpoints through it), so it is taken from the rebuilt
          image's own header, never guessed by the caller.
        * **CRC read-back** — the fragment only counts as repaired
          after the target returns bytes that are identical to the
          rebuilt image and pass the payload checksum.

        Returns the stored image (callers meter repair bandwidth off
        its size). The new placement is recorded in the shared
        :class:`LocationCache` so the next read goes straight to the
        target instead of re-sweeping the group.
        """
        image = bytes(self.fetch(fid))
        header = Fragment.decode(image).header
        try:
            self.transport.call(target_server,
                                m.PreallocateRequest(fid=fid,
                                                     principal=self.principal))
        except FragmentExistsError:
            pass  # already present (stale copy or resumed repair)
        store = m.StoreRequest(fid=fid, data=image, principal=self.principal,
                               marked=header.marked)
        try:
            self.transport.call(target_server, store)
        except FragmentExistsError:
            # The target holds committed bytes under this fid. Identical
            # bytes mean an earlier (possibly crashed) repair already
            # won; anything else is stale and must be replaced whole.
            existing = self.transport.call(
                target_server, m.RetrieveRequest(fid=fid,
                                                 principal=self.principal))
            if bytes(existing.payload) != image:
                self.transport.call(
                    target_server, m.DeleteRequest(fid=fid,
                                                   principal=self.principal))
                self.transport.call(target_server, store)
        self._verify_read_back(fid, target_server, image)
        self.locations.record(fid, target_server)
        return image

    def _verify_read_back(self, fid: int, target_server: str,
                          image: bytes) -> None:
        probe = self.transport.call(
            target_server, m.RetrieveRequest(fid=fid,
                                             principal=self.principal))
        committed = bytes(probe.payload)
        if committed != image:
            raise ReconstructionError(
                "read-back of repaired fragment %d on %s differs from the "
                "rebuilt image" % (fid, target_server))
        try:
            Fragment.decode(committed, verify_crc=True)
        except CorruptFragmentError as exc:
            raise ReconstructionError(
                "repaired fragment %d on %s failed its checksum read-back"
                % (fid, target_server)) from exc
