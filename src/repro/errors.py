"""Exception hierarchy for the Swarm reproduction.

Every error raised by the library derives from :class:`SwarmError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the precise failure mode.
"""

from __future__ import annotations


class SwarmError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(SwarmError):
    """A configuration value is invalid or inconsistent."""


# ---------------------------------------------------------------------------
# Storage-server errors
# ---------------------------------------------------------------------------

class ServerError(SwarmError):
    """Base class for storage-server failures."""


class ServerUnavailableError(ServerError):
    """The server is crashed, partitioned, or administratively down."""


class FragmentNotFoundError(ServerError):
    """No fragment with the requested FID exists on this server."""


class FragmentExistsError(ServerError):
    """A fragment with the requested FID already exists (stores are
    write-once)."""


class OutOfSlotsError(ServerError):
    """The server has no free fragment slots left on its disk."""


class AccessDeniedError(ServerError):
    """An ACL check rejected the request."""


class AclNotFoundError(ServerError):
    """No ACL with the requested AID exists."""


class BadRequestError(ServerError):
    """The request is malformed (bad offsets, overlapping AID ranges, ...)."""


class ScriptError(ServerError):
    """A SwarmScript program failed to parse or execute."""


# ---------------------------------------------------------------------------
# Log-layer errors
# ---------------------------------------------------------------------------

class LogError(SwarmError):
    """Base class for log-layer failures."""


class BlockNotFoundError(LogError):
    """The requested block address does not resolve to live data."""


class CorruptFragmentError(LogError):
    """A fragment failed checksum or structural validation."""


class ReconstructionError(LogError):
    """A missing fragment could not be reconstructed from its stripe."""


class UnrecoverableError(ReconstructionError):
    """Two or more members of one stripe are missing or corrupt: the
    stripe's single parity cannot recover the data. Raised instead of
    returning garbage so callers can distinguish genuine data loss from
    a transient locate failure."""


class CheckpointError(LogError):
    """Checkpoint data is missing or unusable during recovery."""


# ---------------------------------------------------------------------------
# Service / file-system errors
# ---------------------------------------------------------------------------

class ServiceError(SwarmError):
    """Base class for stacked-service failures."""


class CleanerError(ServiceError):
    """The cleaner could not make progress."""


class AruError(ServiceError):
    """Atomic-recovery-unit misuse (e.g. ending an ARU that never began)."""


class FileSystemError(SwarmError):
    """Base class for Sting and baseline file-system failures."""


class FileNotFoundFsError(FileSystemError):
    """Path lookup failed."""


class FileExistsFsError(FileSystemError):
    """Path already exists where a new entry was to be created."""


class NotADirectoryFsError(FileSystemError):
    """A path component that must be a directory is a regular file."""


class IsADirectoryFsError(FileSystemError):
    """A file operation was applied to a directory."""


class DirectoryNotEmptyFsError(FileSystemError):
    """Attempted to remove a non-empty directory."""


class BadFileDescriptorError(FileSystemError):
    """Operation on a closed or invalid file handle."""


# ---------------------------------------------------------------------------
# Simulation errors
# ---------------------------------------------------------------------------

class SimulationError(SwarmError):
    """Base class for discrete-event simulator misuse."""


class DeadlockError(SimulationError):
    """The simulator ran out of events while processes were still waiting."""
