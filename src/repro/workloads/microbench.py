"""The write microbenchmark behind Figures 3 and 4.

"Log layer write performance was measured using a simple microbenchmark
that wrote 10,000 4 KB blocks into the log, then flushed the log to the
storage servers." Raw bandwidth counts every byte sent to servers
(data + log metadata + parity); useful bandwidth counts only the
application's bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.client import SimClientDriver
from repro.cluster.cluster import SimCluster
from repro.cluster.config import ClusterConfig

DEFAULT_BLOCKS = 10_000
DEFAULT_BLOCK_SIZE = 4096


@dataclass
class WriteBenchResult:
    """One configuration's measured write bandwidth."""

    clients: int
    servers: int
    blocks_per_client: int
    block_size: int
    elapsed_s: float
    useful_bytes: int
    raw_bytes: int

    @property
    def useful_mb_per_s(self) -> float:
        """Figure 4's metric (decimal MB/s, as the paper plots)."""
        return self.useful_bytes / self.elapsed_s / 1e6

    @property
    def raw_mb_per_s(self) -> float:
        """Figure 3's metric."""
        return self.raw_bytes / self.elapsed_s / 1e6


def run_write_bench(clients: int, servers: int,
                    blocks: int = DEFAULT_BLOCKS,
                    block_size: int = DEFAULT_BLOCK_SIZE,
                    config: Optional[ClusterConfig] = None,
                    ) -> WriteBenchResult:
    """Run the microbenchmark on a fresh simulated cluster.

    Every client writes ``blocks`` blocks concurrently (as in the
    paper's multi-client configurations) and the clock stops when the
    last flush completes.
    """
    config = config or ClusterConfig(num_servers=servers, num_clients=clients)
    cluster = SimCluster(config)
    drivers = [SimClientDriver(cluster, index) for index in range(clients)]
    processes = [cluster.sim.process(d.write_blocks(blocks, block_size),
                                     name="client-%d" % i)
                 for i, d in enumerate(drivers)]
    cluster.sim.run()
    useful = 0
    raw = 0
    for process in processes:
        if process.exception is not None:
            raise process.exception
        client_useful, client_raw = process.value
        useful += client_useful
        raw += client_raw
    return WriteBenchResult(
        clients=clients, servers=servers, blocks_per_client=blocks,
        block_size=block_size, elapsed_s=cluster.sim.now,
        useful_bytes=useful, raw_bytes=raw)


def sweep(client_counts: List[int], server_counts: List[int],
          blocks: int = DEFAULT_BLOCKS,
          min_servers_for_useful: bool = False,
          ) -> Dict[int, List[WriteBenchResult]]:
    """Run the full figure sweep: one curve per client count.

    With ``min_servers_for_useful`` the 1-server points are skipped,
    matching Figure 4's minimum configuration of one data server plus
    one parity server.
    """
    curves: Dict[int, List[WriteBenchResult]] = {}
    for clients in client_counts:
        curve: List[WriteBenchResult] = []
        for servers in server_counts:
            if min_servers_for_useful and servers < 2:
                continue
            curve.append(run_write_bench(clients, servers, blocks=blocks))
        curves[clients] = curve
    return curves
