"""Synthetic workload generators.

The Andrew benchmark's input is a real source tree; offline we build a
deterministic synthetic equivalent with the same shape (≈70 files,
≈200 KB across a small directory hierarchy, file sizes following the
original's skew). A churn-trace generator produces overwrite/delete
sequences for cleaner experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple


@dataclass
class SyntheticTree:
    """A deterministic file tree: directories plus (path, contents)."""

    directories: List[str] = field(default_factory=list)
    files: List[Tuple[str, bytes]] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """Sum of file sizes."""
        return sum(len(data) for _path, data in self.files)

    @property
    def source_files(self) -> List[Tuple[str, bytes]]:
        """The compilable subset (``.c`` files)."""
        return [(path, data) for path, data in self.files
                if path.endswith(".c")]


def _file_body(rng: random.Random, size: int) -> bytes:
    """Text-like bytes (compressible, like source code)."""
    words = (b"static ", b"int ", b"struct ", b"return ", b"/* swarm */ ",
             b"for (;;) ", b"void ", b"#include ", b"\n")
    out = bytearray()
    while len(out) < size:
        out += rng.choice(words)
    return bytes(out[:size])


def make_andrew_tree(seed: int = 1999, n_dirs: int = 20, n_files: int = 70,
                     total_bytes: int = 200_000) -> SyntheticTree:
    """The Modified Andrew Benchmark's input tree, synthesized.

    ~70 files over ~20 directories totalling ~200 KB, with the heavy
    tail real source trees have (a few large files, many small ones).
    17 of the files are ``.c`` sources for the compile phase, matching
    the original benchmark's make phase.
    """
    rng = random.Random(seed)
    tree = SyntheticTree()
    tree.directories = ["/src"] + ["/src/dir%02d" % i for i in range(n_dirs - 1)]
    # Pareto-flavoured sizes normalized to the target total.
    weights = [rng.paretovariate(1.3) for _ in range(n_files)]
    scale = total_bytes / sum(weights)
    sizes = [max(64, int(w * scale)) for w in weights]
    for index, size in enumerate(sizes):
        directory = tree.directories[index % len(tree.directories)]
        suffix = ".c" if index < 17 else (".h" if index % 3 == 0 else ".txt")
        path = "%s/file%03d%s" % (directory, index, suffix)
        tree.files.append((path, _file_body(rng, size)))
    return tree


def make_churn_trace(seed: int, n_files: int, rounds: int,
                     min_size: int = 1000, max_size: int = 20000,
                     delete_fraction: float = 0.1,
                     ) -> Iterator[Tuple[str, str, bytes]]:
    """Yield ``(op, path, data)`` churn operations for cleaner tests.

    Ops are ``"write"`` (create or overwrite) and ``"delete"``; paths
    cycle through a fixed population so overwrites dominate, creating
    the mostly-dead stripes the cleaner exists to reclaim.
    """
    rng = random.Random(seed)
    live = set()
    for _round in range(rounds):
        for index in range(n_files):
            path = "/churn/f%04d" % index
            if path in live and rng.random() < delete_fraction:
                live.discard(path)
                yield ("delete", path, b"")
            else:
                size = rng.randrange(min_size, max_size)
                live.add(path)
                yield ("write", path, bytes([rng.randrange(256)]) * size)
