"""Workloads: the paper's benchmarks plus synthetic generators."""

from repro.workloads.generators import (
    SyntheticTree,
    make_andrew_tree,
    make_churn_trace,
)
from repro.workloads.microbench import WriteBenchResult, run_write_bench
from repro.workloads.mab import MabCosts, MabResult, run_mab_on_ext2, run_mab_on_sting

__all__ = [
    "SyntheticTree",
    "make_andrew_tree",
    "make_churn_trace",
    "WriteBenchResult",
    "run_write_bench",
    "MabCosts",
    "MabResult",
    "run_mab_on_ext2",
    "run_mab_on_sting",
]
