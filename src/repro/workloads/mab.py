"""The Modified Andrew Benchmark (Figure 5).

Five phases over an Andrew-shaped source tree (Ousterhout's 1990
variant), followed by an unmount to force data to stable storage:

1. **mkdir** — create the directory hierarchy;
2. **copy**  — copy every source file into it;
3. **scan**  — stat every entry (``ls -lR``);
4. **read**  — read (grep) every file;
5. **compile** — compile the 17 ``.c`` files and link a binary
   (CPU-dominated; identical CPU work on both systems).

The same driver runs against Sting (on a simulated Swarm cluster) and
against the ext2 baseline (on the simulated local disk). The CPU cost
of each operation is identical across systems — what differs, exactly
as in the paper, is where the bytes go: Sting batches everything into
1 MB sequential log fragments shipped over the network, ext2 scatters
synchronous metadata and data over the disk. Elapsed time and CPU
utilization come out of those models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cluster.cluster import SimCluster
from repro.cluster.config import ClusterConfig
from repro.baselines.ext2 import Ext2Fs
from repro.services.cache import CacheService
from repro.services.cleaner import CleanerService
from repro.services.stack import ServiceStack
from repro.sting.fs import StingFileSystem
from repro.workloads.generators import SyntheticTree, make_andrew_tree


@dataclass(frozen=True)
class MabCosts:
    """Per-operation CPU costs on the 200 MHz testbed.

    Identical for both file systems (the benchmark's CPU work does not
    depend on the FS); ``ext2_kernel_overhead_per_op`` is the extra
    buffer-cache/allocation work ext2 does per operation relative to
    Sting's simple append path.
    """

    syscall_s: float = 110e-6
    copy_per_byte: float = 450e-9      # user<->kernel + FS insertion
    grep_per_byte: float = 1200e-9     # phase 4 scans every byte
    stat_s: float = 90e-6
    compile_cpu_s: float = 8.2
    compile_read_per_byte: float = 500e-9
    object_fraction: float = 0.65      # .o bytes per source byte
    binary_bytes: int = 260_000
    ext2_kernel_overhead_per_op: float = 300e-6


@dataclass
class MabResult:
    """Measured outcome of one MAB run."""

    system: str
    elapsed_s: float
    cpu_busy_s: float
    io_busy_s: float
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def cpu_utilization(self) -> float:
        """CPU-busy fraction of elapsed time (the paper's 93 % / 57 %)."""
        if self.elapsed_s <= 0:
            return 0.0
        return min(1.0, self.cpu_busy_s / self.elapsed_s)


class _MabDriver:
    """Shared phase logic; subclasses supply FS operations and IO time."""

    def __init__(self, costs: MabCosts, tree: SyntheticTree) -> None:
        self.costs = costs
        self.tree = tree
        self.cpu_busy = 0.0
        self.phase_seconds: Dict[str, float] = {}
        self._phase_start = 0.0

    # FS hooks --------------------------------------------------------------

    def fs_mkdir(self, path: str) -> None:
        raise NotImplementedError

    def fs_write(self, path: str, data: bytes) -> None:
        raise NotImplementedError

    def fs_read(self, path: str) -> bytes:
        raise NotImplementedError

    def fs_stat(self, path: str) -> None:
        raise NotImplementedError

    def fs_unmount(self) -> None:
        raise NotImplementedError

    def io_seconds(self) -> float:
        """Total IO time charged so far (monotonic)."""
        raise NotImplementedError

    # Phase engine ----------------------------------------------------------

    def _cpu(self, seconds: float) -> None:
        self.cpu_busy += seconds

    def _begin_phase(self) -> None:
        self._phase_start = self.cpu_busy + self.io_seconds()

    def _end_phase(self, name: str) -> None:
        self.phase_seconds[name] = (self.cpu_busy + self.io_seconds()
                                    - self._phase_start)

    def run(self) -> None:
        """Execute all five phases plus the unmount."""
        costs = self.costs

        self._begin_phase()
        for directory in self.tree.directories:
            self._cpu(costs.syscall_s)
            self.fs_mkdir(directory)
        self._end_phase("mkdir")

        self._begin_phase()
        for path, data in self.tree.files:
            self._cpu(2 * costs.syscall_s + len(data) * costs.copy_per_byte)
            self.fs_write(path, data)
        self._end_phase("copy")

        self._begin_phase()
        for directory in self.tree.directories:
            self._cpu(costs.stat_s)
            self.fs_stat(directory)
        for path, _data in self.tree.files:
            self._cpu(costs.stat_s)
            self.fs_stat(path)
        self._end_phase("scan")

        self._begin_phase()
        for path, data in self.tree.files:
            self._cpu(costs.syscall_s + len(data) * costs.grep_per_byte)
            self.fs_read(path)
        self._end_phase("read")

        self._begin_phase()
        sources = self.tree.source_files
        self._cpu(costs.compile_cpu_s)
        for path, data in sources:
            self._cpu(len(data) * costs.compile_read_per_byte)
            self.fs_read(path)
            object_path = path[:-2] + ".o"
            object_bytes = max(512, int(len(data) * costs.object_fraction))
            self._cpu(costs.syscall_s)
            self.fs_write(object_path, b"\x7fOBJ" + b"\x00" * (object_bytes - 4))
            self._cpu(object_bytes * costs.copy_per_byte)
        self._cpu(costs.syscall_s)
        self.fs_write("/src/a.out", b"\x7fELF" + b"\x00" * (costs.binary_bytes - 4))
        self._cpu(costs.binary_bytes * costs.copy_per_byte)
        self._end_phase("compile")

        self._begin_phase()
        self.fs_unmount()
        self._end_phase("unmount")


class _StingDriver(_MabDriver):
    """MAB over Sting on a one-client/one-server SimCluster, matching
    the paper's Figure 5 configuration."""

    def __init__(self, costs: MabCosts, tree: SyntheticTree,
                 cluster: SimCluster) -> None:
        super().__init__(costs, tree)
        self.cluster = cluster
        self.transport = cluster.make_transport(0, deferred_mode=True)
        from repro.log.config import LogConfig
        from repro.log.layer import LogLayer

        log = LogLayer(self.transport, cluster.stripe_group(),
                       LogConfig(client_id=1,
                                 fragment_size=cluster.config.fragment_size))
        self.stack = ServiceStack(log)
        self.stack.push(CleanerService(1))
        self.cache = self.stack.push(CacheService(2, capacity_bytes=32 << 20))
        self.fs = self.stack.push(StingFileSystem(3))
        self.fs.format()

    def fs_mkdir(self, path):
        self.fs.mkdir(path)

    def fs_write(self, path, data):
        self.fs.write_file(path, data)

    def fs_read(self, path):
        return self.fs.read_file(path)

    def fs_stat(self, path):
        self.fs.stat(path)

    def fs_unmount(self):
        self.fs.unmount()

    def io_seconds(self) -> float:
        return self.transport.deferred_time


class _Ext2Driver(_MabDriver):
    """MAB over the ext2 baseline on the simulated local disk."""

    def __init__(self, costs: MabCosts, tree: SyntheticTree,
                 fs: Optional[Ext2Fs] = None) -> None:
        super().__init__(costs, tree)
        self.fs = fs or Ext2Fs()

    def _cpu(self, seconds: float) -> None:
        # ext2 pays extra kernel work per operation (allocation, buffer
        # cache management) on top of the shared benchmark CPU costs.
        super()._cpu(seconds + self.costs.ext2_kernel_overhead_per_op)

    def fs_mkdir(self, path):
        self.fs.mkdir(path)

    def fs_write(self, path, data):
        self.fs.write_file(path, data)

    def fs_read(self, path):
        return self.fs.read_file(path)

    def fs_stat(self, path):
        self.fs.stat(path)

    def fs_unmount(self):
        self.fs.unmount()

    def io_seconds(self) -> float:
        return self.fs.disk_seconds


def run_mab_on_sting(costs: MabCosts = MabCosts(),
                     tree: Optional[SyntheticTree] = None,
                     servers: int = 1, clients: int = 1) -> MabResult:
    """Run MAB on Sting (paper configuration: 1 client, 1 server).

    ``clients`` sizes the simulated testbed (extra client machines on
    the switch); the benchmark workload itself still runs on client 0.
    """
    tree = tree or make_andrew_tree()
    cluster = SimCluster(ClusterConfig(num_servers=servers,
                                       num_clients=clients))
    driver = _StingDriver(costs, tree, cluster)
    driver.run()
    io = driver.io_seconds()
    return MabResult(system="sting", elapsed_s=driver.cpu_busy + io,
                     cpu_busy_s=driver.cpu_busy, io_busy_s=io,
                     phase_seconds=driver.phase_seconds)


def run_mab_on_ext2(costs: MabCosts = MabCosts(),
                    tree: Optional[SyntheticTree] = None) -> MabResult:
    """Run MAB on the ext2fs baseline (local simulated disk)."""
    tree = tree or make_andrew_tree()
    driver = _Ext2Driver(costs, tree)
    driver.run()
    io = driver.io_seconds()
    return MabResult(system="ext2fs", elapsed_s=driver.cpu_busy + io,
                     cpu_busy_s=driver.cpu_busy, io_busy_s=io,
                     phase_seconds=driver.phase_seconds)
