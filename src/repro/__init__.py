"""swarm-repro: a reproduction of *The Swarm Scalable Storage System*.

Swarm (Hartman, Murdock, Spalink — ICDCS 1999) builds scalable,
reliable storage from simple storage servers: each client appends its
writes to a private log, stripes the log's 1 MB fragments across a
group of servers with rotated client-computed parity, and layers
stackable services (cleaner, atomic recovery units, logical disk,
caching, the Sting file system) on top. No server-to-server or
client-to-client synchronization is ever needed.

Typical entry points:

>>> from repro.cluster import build_local_cluster
>>> cluster = build_local_cluster(num_servers=4)
>>> log = cluster.make_log(client_id=1)
>>> addr = log.write_block(42, b"hello swarm")
>>> log.flush().wait()
>>> log.read(addr)
b'hello swarm'

Subpackages
-----------
``repro.sim``
    Discrete-event testbed calibrated to the paper's 1999 hardware.
``repro.rpc``
    Message codec and the local / simulated transports.
``repro.server``
    The storage server: fragment slots, marked fragments, ACLs,
    SwarmScript.
``repro.log``
    The striped log: fragments, stripes, parity, checkpoints,
    rollforward, reconstruction.
``repro.services``
    Stackable services: cleaner, ARU, logical disk, cache, compression.
``repro.sting``
    The Sting file system.
``repro.baselines``
    The ext2fs baseline for the Andrew-benchmark comparison.
``repro.cluster``
    Cluster assembly (functional and simulated) and failure injection.
``repro.workloads`` / ``repro.bench``
    The paper's benchmarks and the figure-regeneration harness.
``repro.tools``
    Operational tooling: log scrubbing (fsck) and repair.
"""

__version__ = "1.0.0"
