"""Storage-server configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

DEFAULT_FRAGMENT_SIZE = 1 << 20
"""The prototype used 1 MB log fragments."""


@dataclass(frozen=True)
class ServerConfig:
    """Sizing and policy knobs for one storage server.

    Attributes
    ----------
    server_id:
        The server's name on the network (e.g. ``"s0"``).
    fragment_size:
        Slot size in bytes; every stored fragment must fit in one slot.
    total_slots:
        Number of fragment slots the server's disk provides.
    enforce_acls:
        When False the server skips ACL checks (the paper's prototype
        did not enable ACLs; benchmarks match that default, tests turn
        enforcement on).
    """

    server_id: str
    fragment_size: int = DEFAULT_FRAGMENT_SIZE
    total_slots: int = 4096
    enforce_acls: bool = False
    cache_fragments: int = 0
    """Fragments held in the server's volatile memory cache.

    The prototype had none — the paper names this as one reason reads
    ran at 1.7 MB/s ("the prototype servers do not cache log fragments
    in memory"). Setting it > 0 enables the improvement the authors
    anticipated; the ablation benchmarks measure it.
    """
    slot_overhead: int = 512
    """Extra bytes per slot beyond ``fragment_size``.

    Parity fragments carry the XOR of their siblings' *complete* images
    plus their own header, so they run one fragment header larger than a
    data fragment; slots budget for that.
    """

    @property
    def slot_size(self) -> int:
        """Maximum bytes one stored fragment may occupy."""
        return self.fragment_size + self.slot_overhead

    def __post_init__(self) -> None:
        if not self.server_id:
            raise ConfigError("server_id must be non-empty")
        if self.fragment_size < 4096:
            raise ConfigError("fragment_size unreasonably small")
        if self.total_slots < 1:
            raise ConfigError("total_slots must be positive")
