"""The storage server proper.

Implements exactly the fragment operations §2.4 lists: storing data in a
fragment, retrieving data from a fragment, deleting a fragment,
preallocating space for a fragment, and querying the FID of the newest
*marked* fragment — plus the ACL management routines of §2.4.2 and a
``holds`` query answered during clients' reconstruction broadcasts.

Two properties the rest of the system leans on:

* **Atomicity** — a store either happens completely or not at all, even
  across a server crash. The implementation writes fragment data into a
  reserved slot first and only then commits the fragment-map entry (an
  atomic metadata write), so recovery never sees partial fragments.
* **Ignorance** — the server never parses fragment contents. Blocks,
  records, stripes, and parity are purely client-side concepts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.errors import (
    BadRequestError,
    FragmentExistsError,
    FragmentNotFoundError,
    ServerUnavailableError,
)
from repro.server.acl import AclStore
from repro.server.backend import MemoryBackend, StorageBackend
from repro.server.config import ServerConfig
from repro.server.slots import SlotTable


@dataclass(frozen=True)
class FragmentInfo:
    """What the server knows about one stored fragment."""

    fid: int
    slot: int
    length: int
    marked: bool


class StorageServer:
    """One Swarm storage server."""

    def __init__(self, config: ServerConfig,
                 backend: Optional[StorageBackend] = None) -> None:
        self.config = config
        self.backend = backend if backend is not None else MemoryBackend()
        self.slots = SlotTable(self.backend, config.total_slots)
        self.acls = self._load_acls()
        self.available = True
        # Volatile whole-fragment cache (off by default, as in the
        # prototype). ``last_retrieve_was_cached`` lets the simulated
        # transport skip the disk-time charge on a hit.
        self._cache: "OrderedDict[int, bytes]" = OrderedDict()
        self.last_retrieve_was_cached = False
        self.cache_hits = 0
        self.cache_misses = 0
        # Statistics (read by benchmarks and the doctor-style examples).
        self.bytes_stored = 0
        self.bytes_retrieved = 0
        self.store_ops = 0
        self.retrieve_ops = 0
        self.delete_ops = 0
        # Disk spans touched by the last retrieve_many, one
        # (fid, start_offset, total_bytes) per uncached fragment — the
        # simulated transport charges one positioned access per span
        # instead of one per range.
        self.last_multi_disk_spans: List[Tuple[int, int, int]] = []

    @property
    def server_id(self) -> str:
        """This server's network name."""
        return self.config.server_id

    def _require_available(self) -> None:
        if not self.available:
            raise ServerUnavailableError("server %s is down" % self.server_id)

    # ------------------------------------------------------------------
    # Fragment operations (§2.4)
    # ------------------------------------------------------------------

    def store(self, fid: int, data: bytes, principal: str = "",
              marked: bool = False,
              acl_ranges: Optional[List[Tuple[int, int, int]]] = None) -> int:
        """Store a complete fragment; returns the slot it landed in.

        Stores are write-once: a FID can be stored exactly once (modulo
        :meth:`preallocate`, which reserves the FID without contents).
        """
        self._require_available()
        if len(data) > self.config.slot_size:
            raise BadRequestError(
                "fragment of %d bytes exceeds slot size %d"
                % (len(data), self.config.slot_size))
        existing = self.slots.info_of(fid)
        if existing is not None and not existing.get("preallocated"):
            raise FragmentExistsError("fragment %d already stored" % fid)
        ranges = list(acl_ranges or [])
        self.acls.validate_ranges(ranges, len(data))
        if existing is not None:
            slot = existing["slot"]
        else:
            slot = self.slots.reserve()
        try:
            self.backend.write_slot(slot, data)
        except Exception:
            if existing is None:
                self.slots.abort_reservation(slot)
            raise
        self.slots.commit(fid, slot, len(data), marked, ranges)
        self._cache_insert(fid, data)
        self.bytes_stored += len(data)
        self.store_ops += 1
        return slot

    def retrieve(self, fid: int, offset: int = 0, length: int = -1,
                 principal: str = "") -> bytes:
        """Return ``length`` bytes of fragment ``fid`` starting at ``offset``.

        ``length`` of −1 means "to the end of the fragment". The access
        must pass the ACL tags recorded when the fragment was stored.

        Whole-fragment reads return the server's own immutable image;
        partial reads return a read-only ``memoryview`` slice of it —
        no per-request copy is taken. Callers that must own the bytes
        (anything crossing a real wire does, via the codec) take
        ``bytes()``.
        """
        self._require_available()
        info = self._info_or_raise(fid)
        data = self._cache.get(fid)
        self.last_retrieve_was_cached = data is not None
        if data is not None:
            self._cache.move_to_end(fid)
            self.cache_hits += 1
        else:
            if self.config.cache_fragments:
                self.cache_misses += 1
            data = self.backend.read_slot(info["slot"])
            if data is None:
                raise FragmentNotFoundError(
                    "fragment %d has no slot data" % fid)
            self._cache_insert(fid, data)
        if length < 0:
            length = len(data) - offset
        if offset < 0 or offset + length > len(data):
            raise BadRequestError(
                "range [%d, %d) outside fragment of %d bytes"
                % (offset, offset + length, len(data)))
        self.acls.check_access(info.get("acl_ranges", []), offset, length,
                               principal, "r")
        self.bytes_retrieved += length
        self.retrieve_ops += 1
        if offset == 0 and length == len(data):
            return data
        return memoryview(data)[offset:offset + length]

    def retrieve_many(self, ranges, principal: str = "") -> List[bytes]:
        """Serve many ``(fid, offset, length)`` ranges in one call.

        The batched form of :meth:`retrieve` behind
        :class:`~repro.rpc.messages.MultiRetrieveRequest`. All ranges
        are validated before any byte is served — explicit non-negative
        lengths (no ``-1`` tail reads: the reply carries no framing),
        in-bounds against the fragment, and non-overlapping within one
        fragment — so a bad batch fails whole, never half-answered.
        Each distinct fragment's slot is visited once; the spans read
        from disk are recorded in ``last_multi_disk_spans`` for the
        simulated transport's disk-time model.
        """
        self._require_available()
        self.last_multi_disk_spans = []
        ranges = [(int(fid), int(offset), int(length))
                  for fid, offset, length in ranges]
        infos = {}
        per_fid: dict = {}
        for fid, offset, length in ranges:
            if offset < 0 or length < 0:
                raise BadRequestError(
                    "multi-retrieve needs explicit non-negative ranges, "
                    "got [%d, +%d) in fragment %d" % (offset, length, fid))
            info = infos.get(fid)
            if info is None:
                info = infos[fid] = self._info_or_raise(fid)
            if offset + length > info["length"]:
                raise BadRequestError(
                    "range [%d, %d) outside fragment of %d bytes"
                    % (offset, offset + length, info["length"]))
            per_fid.setdefault(fid, []).append((offset, length))
        for fid, spans in per_fid.items():
            spans = sorted(spans)
            for (off_a, len_a), (off_b, _len_b) in zip(spans, spans[1:]):
                if off_a + len_a > off_b:
                    raise BadRequestError(
                        "overlapping ranges [%d, %d) and [%d, ...) in "
                        "fragment %d" % (off_a, off_a + len_a, off_b, fid))
        for fid, offset, length in ranges:
            self.acls.check_access(infos[fid].get("acl_ranges", []), offset,
                                   length, principal, "r")
        images = {}
        for fid in per_fid:
            data = self._cache.get(fid)
            if data is not None:
                self._cache.move_to_end(fid)
                self.cache_hits += 1
            else:
                if self.config.cache_fragments:
                    self.cache_misses += 1
                data = self.backend.read_slot(infos[fid]["slot"])
                if data is None:
                    raise FragmentNotFoundError(
                        "fragment %d has no slot data" % fid)
                self._cache_insert(fid, data)
                spans = per_fid[fid]
                self.last_multi_disk_spans.append(
                    (fid, min(offset for offset, _length in spans),
                     sum(length for _offset, length in spans)))
            images[fid] = data
        parts: List[bytes] = []
        total = 0
        for fid, offset, length in ranges:
            parts.append(memoryview(images[fid])[offset:offset + length])
            total += length
        self.bytes_retrieved += total
        self.retrieve_ops += 1
        return parts

    def delete(self, fid: int, principal: str = "") -> None:
        """Delete fragment ``fid``, freeing its slot."""
        self._require_available()
        info = self._info_or_raise(fid)
        self.acls.check_access(info.get("acl_ranges", []), 0,
                               info.get("length", 0), principal, "w")
        self.backend.clear_slot(info["slot"])
        self._cache.pop(fid, None)
        self.slots.release(fid)
        self.delete_ops += 1

    def preallocate(self, fid: int) -> int:
        """Reserve a slot for ``fid`` ahead of its store; returns the slot.

        Lets a client guarantee space for an incoming stripe before
        transferring any data.
        """
        self._require_available()
        if fid in self.slots:
            raise FragmentExistsError("fragment %d already present" % fid)
        slot = self.slots.reserve()
        self.slots.commit(fid, slot, 0, False, [])
        # Tag as preallocated so a later store may fill it.
        info = self.slots.info_of(fid)
        info["preallocated"] = True
        return slot

    def last_marked(self, client_id: int = -1) -> int:
        """FID of the newest marked fragment on this server (0 if none).

        ``client_id`` >= 0 limits the search to that client's fragments.
        """
        self._require_available()
        return self.slots.newest_marked_fid(client_id)

    def holds(self, fid: int) -> bool:
        """Whether this server stores fragment ``fid`` (broadcast query)."""
        self._require_available()
        info = self.slots.info_of(fid)
        return info is not None and not info.get("preallocated")

    def holds_many(self, fids) -> List[int]:
        """Subset of ``fids`` stored here, in request order.

        The batched form of :meth:`holds`: one location broadcast asks
        each server about *every* wanted fragment at once, so locating F
        fragments across S servers costs at most S round trips instead
        of F×S.
        """
        self._require_available()
        held: List[int] = []
        for fid in fids:
            info = self.slots.info_of(fid)
            if info is not None and not info.get("preallocated"):
                held.append(fid)
        return held

    def fragment_info(self, fid: int) -> FragmentInfo:
        """Metadata for one stored fragment."""
        self._require_available()
        info = self._info_or_raise(fid)
        return FragmentInfo(fid=fid, slot=info["slot"],
                            length=info["length"], marked=info["marked"])

    def list_fids(self) -> List[int]:
        """All stored FIDs (diagnostics; not part of the paper's op set)."""
        self._require_available()
        return sorted(self.slots.fids())

    # ------------------------------------------------------------------
    # ACL management (§2.4.2)
    # ------------------------------------------------------------------

    def create_acl(self, readers: Set[str], writers: Set[str]) -> int:
        """Create an ACL; returns the new AID."""
        self._require_available()
        aid = self.acls.create_acl(readers, writers)
        self._persist_acls()
        return aid

    def modify_acl(self, aid: int, readers: Set[str] = None,
                   writers: Set[str] = None) -> None:
        """Replace an ACL's membership."""
        self._require_available()
        self.acls.modify_acl(aid, readers, writers)
        self._persist_acls()

    def delete_acl(self, aid: int) -> None:
        """Delete an ACL."""
        self._require_available()
        self.acls.delete_acl(aid)
        self._persist_acls()

    # ------------------------------------------------------------------
    # Failure injection / restart
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Simulate a crash: the server stops answering immediately.

        Volatile state (including the fragment cache) is discarded;
        durable state (slots + fragment map) persists in the backend.
        """
        self.available = False
        self._cache.clear()

    def restart(self) -> None:
        """Bring the server back: reload durable state from the backend."""
        self.slots = SlotTable(self.backend, self.config.total_slots)
        self.acls = self._load_acls()
        self.available = True

    def _load_acls(self) -> AclStore:
        payload = self.backend.load_metadata("acls")
        if payload is None:
            return AclStore(enforce=self.config.enforce_acls)
        return AclStore.load(payload, enforce=self.config.enforce_acls)

    def _persist_acls(self) -> None:
        self.backend.save_metadata("acls", self.acls.dump())

    def invalidate_cache(self, fid: int) -> None:
        """Drop ``fid`` from the volatile fragment cache.

        Failure injection that mutates durable slot bytes behind the
        server's back (corruption, torn stores) must call this, or
        retrieves keep serving the stale cached image.
        """
        self._cache.pop(fid, None)

    def _cache_insert(self, fid: int, data) -> None:
        if self.config.cache_fragments <= 0:
            return
        # Ownership is taken only when the fragment is actually cached;
        # with caching off, the caller's bytes-like data is never copied.
        self._cache[fid] = bytes(data)
        self._cache.move_to_end(fid)
        while len(self._cache) > self.config.cache_fragments:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------

    def _info_or_raise(self, fid: int) -> dict:
        info = self.slots.info_of(fid)
        if info is None or info.get("preallocated"):
            raise FragmentNotFoundError("no fragment %d on %s"
                                        % (fid, self.server_id))
        return info
