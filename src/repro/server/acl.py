"""Byte-range access control (§2.4.2 of the paper).

The server maintains a database of ACLs indexed by ACL id (AID). When a
fragment is stored, each non-overlapping byte range may be assigned an
AID; later accesses to a range are permitted only if the requesting
principal is a member of the relevant ACL. ACLs attach to *byte ranges*
rather than blocks or records because the server does not know about
those abstractions — a fragment is an opaque set of bytes. Permissions
change by editing ACL membership, never by re-tagging stored data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.errors import AccessDeniedError, AclNotFoundError, BadRequestError

READ = "r"
WRITE = "w"


@dataclass
class Acl:
    """One access-control list: principals allowed to read / write."""

    aid: int
    readers: Set[str] = field(default_factory=set)
    writers: Set[str] = field(default_factory=set)

    def permits(self, principal: str, mode: str) -> bool:
        """Whether ``principal`` may access in ``mode`` (``"r"``/``"w"``)."""
        members = self.readers if mode == READ else self.writers
        return principal in members or "*" in members


class AclStore:
    """The server's ACL database plus per-fragment range tags."""

    def __init__(self, enforce: bool = True) -> None:
        self.enforce = enforce
        self._acls: Dict[int, Acl] = {}
        self._next_aid = 1

    # -- persistence -----------------------------------------------------------

    def dump(self) -> bytes:
        """Serialize the database for backend persistence."""
        import json

        payload = {
            "next_aid": self._next_aid,
            "acls": {str(aid): {"r": sorted(acl.readers),
                                "w": sorted(acl.writers)}
                     for aid, acl in self._acls.items()},
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def load(cls, payload: bytes, enforce: bool = True) -> "AclStore":
        """Restore a database serialized by :meth:`dump`."""
        import json

        store = cls(enforce=enforce)
        raw = json.loads(payload.decode("utf-8"))
        store._next_aid = raw["next_aid"]
        for aid, sets in raw["acls"].items():
            store._acls[int(aid)] = Acl(int(aid), set(sets["r"]), set(sets["w"]))
        return store

    # -- ACL management ------------------------------------------------------

    def create_acl(self, readers: Set[str], writers: Set[str]) -> int:
        """Create an ACL; returns its AID."""
        aid = self._next_aid
        self._next_aid += 1
        self._acls[aid] = Acl(aid, set(readers), set(writers))
        return aid

    def modify_acl(self, aid: int, readers: Set[str] = None,
                   writers: Set[str] = None) -> None:
        """Replace the membership sets of an existing ACL.

        This is how a new client inherits existing privileges: add it to
        the right ACLs and every byte range they protect opens up.
        """
        acl = self._acls.get(aid)
        if acl is None:
            raise AclNotFoundError("no ACL with AID %d" % aid)
        if readers is not None:
            acl.readers = set(readers)
        if writers is not None:
            acl.writers = set(writers)

    def delete_acl(self, aid: int) -> None:
        """Remove an ACL; ranges tagged with it become inaccessible."""
        if aid not in self._acls:
            raise AclNotFoundError("no ACL with AID %d" % aid)
        del self._acls[aid]

    def get(self, aid: int) -> Acl:
        """Look up an ACL by AID."""
        acl = self._acls.get(aid)
        if acl is None:
            raise AclNotFoundError("no ACL with AID %d" % aid)
        return acl

    # -- range validation and checks ------------------------------------------

    @staticmethod
    def validate_ranges(ranges: List[Tuple[int, int, int]],
                        fragment_length: int) -> None:
        """Check that ``(start, end, aid)`` tags are sane and disjoint."""
        last_end = -1
        for start, end, _aid in sorted(ranges):
            if start < 0 or end > fragment_length or start >= end:
                raise BadRequestError("bad ACL range [%d, %d)" % (start, end))
            if start < last_end:
                raise BadRequestError("overlapping ACL ranges")
            last_end = end

    def check_access(self, ranges: List[Tuple[int, int, int]], offset: int,
                     length: int, principal: str, mode: str) -> None:
        """Authorize an access to ``[offset, offset+length)``.

        Every tagged range the access touches must admit the principal;
        untagged bytes are world-accessible (matching the paper: tagging
        is optional per range).
        """
        if not self.enforce:
            return
        end = offset + length
        for start, stop, aid in ranges:
            if start < end and offset < stop:  # ranges intersect
                acl = self._acls.get(aid)
                if acl is None or not acl.permits(principal, mode):
                    raise AccessDeniedError(
                        "principal %r denied %s on range [%d, %d)"
                        % (principal, mode, start, stop))
