"""Storage backends: where fragment slots actually live.

The server logic is backend-agnostic. :class:`MemoryBackend` keeps slots
in a dict (fast, used by tests and the simulated testbed, whose timing
comes from the disk *model*, not real IO). :class:`FileBackend` keeps
slots in a real file on the host filesystem with write-then-rename
metadata commits, demonstrating the durability story end to end.
"""

from __future__ import annotations

import json
import os
from abc import ABC, abstractmethod
from typing import Dict, Optional


class StorageBackend(ABC):
    """Slot-granular persistent storage for one server."""

    @abstractmethod
    def write_slot(self, slot: int, data: bytes) -> None:
        """Atomically replace the contents of ``slot`` with ``data``."""

    @abstractmethod
    def read_slot(self, slot: int) -> Optional[bytes]:
        """Return the contents of ``slot`` or None if never written."""

    @abstractmethod
    def clear_slot(self, slot: int) -> None:
        """Discard the contents of ``slot``."""

    @abstractmethod
    def save_metadata(self, key: str, payload: bytes) -> None:
        """Atomically persist a named metadata blob (the fragment map)."""

    @abstractmethod
    def load_metadata(self, key: str) -> Optional[bytes]:
        """Load a metadata blob saved by :meth:`save_metadata`."""


class MemoryBackend(StorageBackend):
    """In-memory backend; survives simulated crashes (which only reset
    the server's volatile state), not process exit."""

    def __init__(self) -> None:
        self._slots: Dict[int, bytes] = {}
        self._metadata: Dict[str, bytes] = {}

    def write_slot(self, slot: int, data: bytes) -> None:
        self._slots[slot] = bytes(data)

    def read_slot(self, slot: int) -> Optional[bytes]:
        return self._slots.get(slot)

    def clear_slot(self, slot: int) -> None:
        self._slots.pop(slot, None)

    def save_metadata(self, key: str, payload: bytes) -> None:
        self._metadata[key] = bytes(payload)

    def load_metadata(self, key: str) -> Optional[bytes]:
        return self._metadata.get(key)

    def used_slots(self) -> int:
        """Number of occupied slots (test/diagnostic helper)."""
        return len(self._slots)


class FileBackend(StorageBackend):
    """Backend storing slots as files under a directory.

    Each slot is one file (``slot_<n>``), written via a temporary file
    and ``os.replace`` so a crash never leaves a half-written slot —
    this is how the real server honours the paper's atomic-store
    guarantee. Metadata blobs use the same write-then-rename commit.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _slot_path(self, slot: int) -> str:
        return os.path.join(self.directory, "slot_%d" % slot)

    def _meta_path(self, key: str) -> str:
        return os.path.join(self.directory, "meta_%s.json" % key)

    def _atomic_write(self, path: str, data: bytes) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def write_slot(self, slot: int, data: bytes) -> None:
        self._atomic_write(self._slot_path(slot), data)

    def read_slot(self, slot: int) -> Optional[bytes]:
        try:
            with open(self._slot_path(slot), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def clear_slot(self, slot: int) -> None:
        try:
            os.remove(self._slot_path(slot))
        except FileNotFoundError:
            pass

    def save_metadata(self, key: str, payload: bytes) -> None:
        self._atomic_write(self._meta_path(key), payload)

    def load_metadata(self, key: str) -> Optional[bytes]:
        try:
            with open(self._meta_path(key), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None


def encode_fragment_map(mapping: Dict[int, dict]) -> bytes:
    """Serialize the FID→slot map for backend persistence."""
    return json.dumps({str(fid): info for fid, info in mapping.items()},
                      sort_keys=True).encode("utf-8")


def decode_fragment_map(payload: bytes) -> Dict[int, dict]:
    """Inverse of :func:`encode_fragment_map`."""
    raw = json.loads(payload.decode("utf-8"))
    return {int(fid): info for fid, info in raw.items()}
