"""``python -m repro.server.netd`` — one storage server on a TCP socket.

Runs a single :class:`~repro.server.server.StorageServer` behind the
frame protocol from :mod:`repro.rpc.net`, as a real OS process. This is
the deployable shape of the network plane: launch one ``netd`` per
server, then point a :class:`~repro.rpc.net.TcpTransport` at the
printed addresses.

On successful bind the daemon prints one machine-parsable line::

    NETD READY <server_id> <host> <port>

and flushes it, so a launcher (tests, scripts) can harvest the bound
port when started with ``--port 0``. It then serves until killed —
which is exactly how the kill -9 recovery test uses it.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.rpc.net import serve_server
from repro.server.config import ServerConfig
from repro.server.server import StorageServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.netd",
        description="Serve one Swarm storage server over TCP.")
    parser.add_argument("--server-id", required=True,
                        help="server name, e.g. s0")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default loopback)")
    parser.add_argument("--port", type=int, default=0,
                        help="bind port; 0 picks a free port and prints it")
    parser.add_argument("--fragment-size", type=int, default=1 << 20,
                        help="fragment size in bytes")
    parser.add_argument("--total-slots", type=int, default=4096,
                        help="fragment slots on this server")
    parser.add_argument("--enforce-acls", action="store_true",
                        help="enable ACL checks on every operation")
    return parser


async def run(args) -> None:
    server = StorageServer(ServerConfig(
        server_id=args.server_id,
        fragment_size=args.fragment_size,
        total_slots=args.total_slots,
        enforce_acls=args.enforce_acls,
    ))
    listener = await serve_server(server, host=args.host, port=args.port)
    sockname = listener.sockets[0].getsockname()
    print("NETD READY %s %s %d" % (args.server_id, sockname[0], sockname[1]),
          flush=True)
    async with listener:
        await listener.serve_forever()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(run(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
