"""SwarmScript: the server's scriptable command interface.

The prototype drove every storage-server operation through TCL scripts
sent over the wire, which (a) made the interface easy to extend and
debug and (b) effectively turned the server into an *Active Disk* —
clients can ship small programs to run next to the data. A real TCL is
not available offline, so this module implements a small TCL-flavoured
interpreter with the features the paper's usage implies:

* one command per line (or ``;``-separated), words split on whitespace;
* ``set name value`` variables and ``$name`` substitution;
* ``[command ...]`` substitution (nested evaluation);
* ``{...}`` literal grouping and ``"..."`` grouping with substitution;
* ``expr``, ``if``, ``foreach``, ``puts`` control/utility commands;
* one command per storage-server operation (``store``, ``retrieve``,
  ``delete``, ``preallocate``, ``last-marked``, ``holds``, ACL ops);
* active-disk demonstrators that compute *at* the server instead of
  shipping a fragment to the client: ``count-byte`` and ``checksum``.

Binary fragment data crosses the script boundary hex-encoded, mirroring
how the prototype passed data through ASCII TCL scripts.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ScriptError
from repro.util.checksums import crc32_of


def tokenize_command(line: str) -> List[str]:
    """Split one command into words, honouring ``{}``, ``""`` and ``[]``.

    Returns raw words; substitution happens later so ``{}`` can suppress
    it, exactly as in TCL.
    """
    words: List[str] = []
    i, n = 0, len(line)
    while i < n:
        ch = line[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "{" or ch == "[":
            close = "}" if ch == "{" else "]"
            depth = 1
            j = i + 1
            while j < n and depth:
                if line[j] == ch:
                    depth += 1
                elif line[j] == close:
                    depth -= 1
                j += 1
            if depth:
                raise ScriptError("unbalanced %r in command: %r" % (ch, line))
            words.append(line[i:j])
            i = j
        elif ch == '"':
            j = i + 1
            while j < n and line[j] != '"':
                j += 1
            if j >= n:
                raise ScriptError("unterminated string in command: %r" % line)
            words.append(line[i:j + 1])
            i = j + 1
        else:
            j = i
            while j < n and not line[j].isspace():
                j += 1
            words.append(line[i:j])
            i = j
    return words


def split_commands(script: str) -> List[str]:
    """Split a script into commands on newlines and ``;`` (outside
    braces/brackets/strings); drops blanks and ``#`` comments."""
    commands: List[str] = []
    current: List[str] = []
    depth = 0
    in_string = False
    for ch in script:
        if in_string:
            current.append(ch)
            if ch == '"':
                in_string = False
            continue
        if ch == '"':
            in_string = True
            current.append(ch)
        elif ch in "{[":
            depth += 1
            current.append(ch)
        elif ch in "}]":
            depth -= 1
            current.append(ch)
        elif ch in "\n;" and depth == 0:
            commands.append("".join(current))
            current = []
        else:
            current.append(ch)
    commands.append("".join(current))
    result = []
    for command in commands:
        stripped = command.strip()
        if stripped and not stripped.startswith("#"):
            result.append(stripped)
    return result


class SwarmScriptInterpreter:
    """Evaluates SwarmScript programs against one storage server."""

    def __init__(self, server, principal: str = "") -> None:
        self.server = server
        self.principal = principal
        self.variables: Dict[str, str] = {}
        self.output: List[str] = []
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "set": self._cmd_set,
            "expr": self._cmd_expr,
            "if": self._cmd_if,
            "foreach": self._cmd_foreach,
            "puts": self._cmd_puts,
            "store": self._cmd_store,
            "retrieve": self._cmd_retrieve,
            "delete": self._cmd_delete,
            "preallocate": self._cmd_preallocate,
            "last-marked": self._cmd_last_marked,
            "holds": self._cmd_holds,
            "acl-create": self._cmd_acl_create,
            "acl-modify": self._cmd_acl_modify,
            "acl-delete": self._cmd_acl_delete,
            "count-byte": self._cmd_count_byte,
            "checksum": self._cmd_checksum,
        }

    # -- evaluation ---------------------------------------------------------

    def run(self, script: str) -> str:
        """Execute ``script``; return accumulated ``puts`` output."""
        self.output = []
        for command in split_commands(script):
            self.eval_command(command)
        return "\n".join(self.output)

    def eval_command(self, command: str) -> str:
        """Evaluate one command and return its result string."""
        raw_words = tokenize_command(command)
        if not raw_words:
            return ""
        name = self._substitute(raw_words[0])
        handler = self._commands.get(name)
        if handler is None:
            raise ScriptError("unknown command %r" % name)
        return handler(raw_words[1:])

    def _substitute(self, word: str) -> str:
        """Apply TCL-style substitution to one word."""
        if word.startswith("{") and word.endswith("}"):
            return word[1:-1]
        if word.startswith("[") and word.endswith("]"):
            return self.eval_command(word[1:-1])
        if word.startswith('"') and word.endswith('"') and len(word) >= 2:
            return self._interpolate(word[1:-1])
        return self._interpolate(word)

    def _interpolate(self, text: str) -> str:
        out: List[str] = []
        i, n = 0, len(text)
        while i < n:
            if text[i] == "$":
                j = i + 1
                while j < n and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                name = text[i + 1:j]
                if not name:
                    raise ScriptError("dangling $ in %r" % text)
                if name not in self.variables:
                    raise ScriptError("undefined variable %r" % name)
                out.append(self.variables[name])
                i = j
            elif text[i] == "[":
                depth = 1
                j = i + 1
                while j < n and depth:
                    if text[j] == "[":
                        depth += 1
                    elif text[j] == "]":
                        depth -= 1
                    j += 1
                out.append(self.eval_command(text[i + 1:j - 1]))
                i = j
            else:
                out.append(text[i])
                i += 1
        return "".join(out)

    def _args(self, raw_words: List[str]) -> List[str]:
        return [self._substitute(word) for word in raw_words]

    # -- utility commands ------------------------------------------------------

    def _cmd_set(self, raw: List[str]) -> str:
        args = self._args(raw)
        if len(args) != 2:
            raise ScriptError("set expects: set name value")
        self.variables[args[0]] = args[1]
        return args[1]

    def _cmd_expr(self, raw: List[str]) -> str:
        # Brace-quoted expressions arrive literal; expr performs its own
        # substitution pass, as TCL's expr does.
        expression = self._interpolate(" ".join(self._args(raw)))
        allowed = set("0123456789+-*/%()<>=! .")
        if not expression or not set(expression) <= allowed:
            raise ScriptError("expr accepts arithmetic only: %r" % expression)
        try:
            value = eval(expression, {"__builtins__": {}}, {})  # noqa: S307
        except Exception as exc:
            raise ScriptError("bad expression %r: %s" % (expression, exc))
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)

    def _cmd_if(self, raw: List[str]) -> str:
        if len(raw) not in (2, 4):
            raise ScriptError("if expects: if {cond} {body} ?else {body}?")
        condition = self._cmd_expr([raw[0]])
        if condition not in ("0", ""):
            return self.run_block(raw[1])
        if len(raw) == 4:
            if self._substitute(raw[2]) != "else":
                raise ScriptError("expected 'else' in if command")
            return self.run_block(raw[3])
        return ""

    def _cmd_foreach(self, raw: List[str]) -> str:
        if len(raw) != 3:
            raise ScriptError("foreach expects: foreach var {items} {body}")
        var = self._substitute(raw[0])
        items = self._substitute(raw[1]).split()
        result = ""
        for item in items:
            self.variables[var] = item
            result = self.run_block(raw[2])
        return result

    def run_block(self, raw_block: str) -> str:
        """Run a ``{...}`` block as a script; return the last result."""
        body = raw_block[1:-1] if raw_block.startswith("{") else raw_block
        result = ""
        for command in split_commands(body):
            result = self.eval_command(command)
        return result

    def _cmd_puts(self, raw: List[str]) -> str:
        text = " ".join(self._args(raw))
        self.output.append(text)
        return text

    # -- server operation commands ------------------------------------------------

    def _cmd_store(self, raw: List[str]) -> str:
        args = self._args(raw)
        if len(args) < 2:
            raise ScriptError("store expects: store fid hexdata ?marked?")
        fid = self._int(args[0])
        try:
            data = bytes.fromhex(args[1])
        except ValueError as exc:
            raise ScriptError("store data must be hex: %s" % exc)
        marked = len(args) > 2 and args[2] in ("1", "marked", "true")
        slot = self.server.store(fid, data, principal=self.principal,
                                 marked=marked)
        return str(slot)

    def _cmd_retrieve(self, raw: List[str]) -> str:
        args = self._args(raw)
        if len(args) not in (1, 3):
            raise ScriptError("retrieve expects: retrieve fid ?offset length?")
        fid = self._int(args[0])
        offset = self._int(args[1]) if len(args) == 3 else 0
        length = self._int(args[2]) if len(args) == 3 else -1
        data = self.server.retrieve(fid, offset, length,
                                    principal=self.principal)
        return data.hex()

    def _cmd_delete(self, raw: List[str]) -> str:
        args = self._args(raw)
        if len(args) != 1:
            raise ScriptError("delete expects: delete fid")
        self.server.delete(self._int(args[0]), principal=self.principal)
        return ""

    def _cmd_preallocate(self, raw: List[str]) -> str:
        args = self._args(raw)
        if len(args) != 1:
            raise ScriptError("preallocate expects: preallocate fid")
        return str(self.server.preallocate(self._int(args[0])))

    def _cmd_last_marked(self, raw: List[str]) -> str:
        if raw:
            raise ScriptError("last-marked takes no arguments")
        return str(self.server.last_marked())

    def _cmd_holds(self, raw: List[str]) -> str:
        args = self._args(raw)
        if len(args) != 1:
            raise ScriptError("holds expects: holds fid")
        return "1" if self.server.holds(self._int(args[0])) else "0"

    def _cmd_acl_create(self, raw: List[str]) -> str:
        args = self._args(raw)
        if len(args) != 2:
            raise ScriptError("acl-create expects: acl-create {readers} {writers}")
        return str(self.server.create_acl(set(args[0].split()),
                                          set(args[1].split())))

    def _cmd_acl_modify(self, raw: List[str]) -> str:
        args = self._args(raw)
        if len(args) != 3:
            raise ScriptError(
                "acl-modify expects: acl-modify aid {readers} {writers}")
        self.server.modify_acl(self._int(args[0]), set(args[1].split()),
                               set(args[2].split()))
        return ""

    def _cmd_acl_delete(self, raw: List[str]) -> str:
        args = self._args(raw)
        if len(args) != 1:
            raise ScriptError("acl-delete expects: acl-delete aid")
        self.server.delete_acl(self._int(args[0]))
        return ""

    # -- active-disk demonstrators ----------------------------------------------

    def _cmd_count_byte(self, raw: List[str]) -> str:
        """Count occurrences of a byte value inside a fragment,
        server-side — the data never crosses the network."""
        args = self._args(raw)
        if len(args) != 2:
            raise ScriptError("count-byte expects: count-byte fid byte")
        data = self.server.retrieve(self._int(args[0]),
                                    principal=self.principal)
        return str(data.count(self._int(args[1]) & 0xFF))

    def _cmd_checksum(self, raw: List[str]) -> str:
        """CRC-32 of a whole fragment, computed at the server."""
        args = self._args(raw)
        if len(args) != 1:
            raise ScriptError("checksum expects: checksum fid")
        data = self.server.retrieve(self._int(args[0]),
                                    principal=self.principal)
        return str(crc32_of(data))

    @staticmethod
    def _int(text: str) -> int:
        try:
            return int(text, 0)
        except ValueError as exc:
            raise ScriptError("expected integer, got %r" % text) from exc
