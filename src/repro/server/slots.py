"""Slot allocation and the on-disk fragment map.

The server divides its disk into fragment-sized slots, one per fragment,
and maintains an FID→slot mapping (the *fragment map*), persisted
through the storage backend so it survives server restarts.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional

from repro.errors import OutOfSlotsError
from repro.util.fids import fid_client
from repro.server.backend import (
    StorageBackend,
    decode_fragment_map,
    encode_fragment_map,
)

_MAP_KEY = "fragment_map"


class SlotTable:
    """Allocates slots and maps FIDs to them.

    Allocation hands out the lowest free slot; freed slots are reused.
    Every mutation persists the map via the backend's atomic metadata
    write, keeping the map consistent with at-most-one in-flight
    fragment — which is what makes the server's store operation atomic:
    the fragment data is written to its slot first, and only then does
    the map commit make it visible.
    """

    def __init__(self, backend: StorageBackend, total_slots: int) -> None:
        self._backend = backend
        self._total_slots = total_slots
        self._fid_to_slot: Dict[int, dict] = {}
        self._used_slots: set = set()
        self._free_heap: List[int] = []
        self._next_fresh = 0
        self._load()

    def _load(self) -> None:
        payload = self._backend.load_metadata(_MAP_KEY)
        if payload is None:
            return
        self._fid_to_slot = decode_fragment_map(payload)
        self._used_slots = {info["slot"] for info in self._fid_to_slot.values()}
        self._next_fresh = max(self._used_slots) + 1 if self._used_slots else 0
        self._free_heap = [slot for slot in range(self._next_fresh)
                           if slot not in self._used_slots]
        heapq.heapify(self._free_heap)

    def _persist(self) -> None:
        self._backend.save_metadata(_MAP_KEY, encode_fragment_map(self._fid_to_slot))

    # -- queries -----------------------------------------------------------

    def __contains__(self, fid: int) -> bool:
        return fid in self._fid_to_slot

    def __len__(self) -> int:
        return len(self._fid_to_slot)

    def slot_of(self, fid: int) -> Optional[int]:
        """Slot holding ``fid``, or None."""
        info = self._fid_to_slot.get(fid)
        return None if info is None else info["slot"]

    def info_of(self, fid: int) -> Optional[dict]:
        """Full map entry for ``fid`` (slot, marked, length, acl ranges)."""
        return self._fid_to_slot.get(fid)

    def fids(self) -> Iterator[int]:
        """Iterate all stored FIDs."""
        return iter(list(self._fid_to_slot))

    def free_slots(self) -> int:
        """Number of unused slots."""
        return self._total_slots - len(self._used_slots)

    def newest_marked_fid(self, client_id: int = -1) -> int:
        """Largest FID stored with the *marked* flag, or 0 if none.

        This is the server-side half of checkpoint discovery: clients
        store checkpoints in marked fragments and ask each server in
        their stripe group for its newest one. ``client_id`` >= 0
        restricts the search to FIDs that client allocated.
        """
        marked: List[int] = [
            fid for fid, info in self._fid_to_slot.items()
            if info.get("marked")
            and (client_id < 0 or fid_client(fid) == client_id)
        ]
        return max(marked) if marked else 0

    # -- mutations ----------------------------------------------------------

    def reserve(self) -> int:
        """Take the lowest free slot *without* persisting anything.

        First half of the atomic store protocol: the server writes the
        fragment data into the reserved slot, then calls :meth:`commit`.
        A crash in between leaves the slot unreferenced (and reclaimable
        on restart), so a partially stored fragment is never visible.
        """
        slot = self._lowest_free_slot()
        self._used_slots.add(slot)
        return slot

    def commit(self, fid: int, slot: int, length: int, marked: bool,
               acl_ranges: Optional[list] = None) -> None:
        """Publish ``fid`` → ``slot`` in the persistent fragment map."""
        self._fid_to_slot[fid] = {
            "slot": slot,
            "length": length,
            "marked": bool(marked),
            "acl_ranges": acl_ranges or [],
        }
        self._persist()

    def abort_reservation(self, slot: int) -> None:
        """Return a reserved-but-uncommitted slot to the free pool."""
        if slot in self._used_slots:
            self._used_slots.discard(slot)
            heapq.heappush(self._free_heap, slot)

    def allocate(self, fid: int, length: int, marked: bool,
                 acl_ranges: Optional[list] = None) -> int:
        """Reserve and commit in one step (non-crash-critical callers)."""
        slot = self.reserve()
        self.commit(fid, slot, length, marked, acl_ranges)
        return slot

    def release(self, fid: int) -> Optional[int]:
        """Unbind ``fid``; return its former slot (None if absent)."""
        info = self._fid_to_slot.pop(fid, None)
        if info is None:
            return None
        self._used_slots.discard(info["slot"])
        heapq.heappush(self._free_heap, info["slot"])
        self._persist()
        return info["slot"]

    def _lowest_free_slot(self) -> int:
        if self._free_heap:
            return heapq.heappop(self._free_heap)
        if self._next_fresh < self._total_slots:
            slot = self._next_fresh
            self._next_fresh += 1
            return slot
        raise OutOfSlotsError("no free fragment slots")
