"""The Swarm storage server.

A storage server is deliberately simple — "little more than a virtual
disk that provides a sparse address space". It stores log fragments in
fragment-sized slots, keeps an FID→slot map, answers "newest marked
fragment" queries (checkpoint discovery), performs every store
atomically, enforces byte-range ACLs, and exposes the whole operation
set through SwarmScript (the reproduction's stand-in for the prototype's
TCL interface). Servers never talk to each other and know nothing about
stripes, blocks, or records.
"""

from repro.server.acl import Acl, AclStore
from repro.server.backend import FileBackend, MemoryBackend, StorageBackend
from repro.server.config import ServerConfig
from repro.server.server import FragmentInfo, StorageServer
from repro.server.slots import SlotTable
from repro.server.script import SwarmScriptInterpreter

__all__ = [
    "Acl",
    "AclStore",
    "FileBackend",
    "MemoryBackend",
    "StorageBackend",
    "ServerConfig",
    "FragmentInfo",
    "StorageServer",
    "SlotTable",
    "SwarmScriptInterpreter",
]
