"""Failure injection for tests and examples.

Swarm's failure model: storage servers can crash (stop answering) and
later restart with their durable state; clients can crash, losing their
buffered log tail but recovering via rollforward. The injector wraps
both, plus scheduled mid-run crashes inside the simulator.
"""

from __future__ import annotations

from typing import List, Union

from repro.cluster.cluster import LocalCluster, SimCluster
from repro.server.server import StorageServer


class FailureInjector:
    """Crash/restart servers in a local or simulated cluster."""

    def __init__(self, cluster: Union[LocalCluster, SimCluster]) -> None:
        self.cluster = cluster
        self.crashed: List[str] = []

    def _server(self, server_id: str) -> StorageServer:
        if isinstance(self.cluster, SimCluster):
            return self.cluster.server_nodes[server_id].server
        return self.cluster.servers[server_id]

    def crash_server(self, server_id: str) -> None:
        """Stop a server immediately."""
        self._server(server_id).crash()
        if server_id not in self.crashed:
            self.crashed.append(server_id)

    def restart_server(self, server_id: str) -> None:
        """Restart a crashed server with its durable state."""
        self._server(server_id).restart()
        if server_id in self.crashed:
            self.crashed.remove(server_id)

    def crash_server_at(self, server_id: str, sim_time: float) -> None:
        """Schedule a server crash at a simulated time (SimCluster only)."""
        if not isinstance(self.cluster, SimCluster):
            raise TypeError("timed crashes need a SimCluster")
        sim = self.cluster.sim

        def crash_process():
            yield sim.timeout(sim_time - sim.now if sim_time > sim.now else 0)
            self.crash_server(server_id)

        sim.process(crash_process(), name="crash %s" % server_id)

    def wipe_server(self, server_id: str) -> None:
        """Simulate total media loss: crash and discard durable state.

        Afterwards every fragment the server held must be reconstructed
        from stripe parity (see
        :meth:`repro.log.reconstruct.Reconstructor.rebuild_to_server`).
        """
        server = self._server(server_id)
        server.crash()
        from repro.server.backend import MemoryBackend

        server.backend = MemoryBackend()
        if server_id not in self.crashed:
            self.crashed.append(server_id)

    def alive_servers(self) -> List[str]:
        """Servers currently answering."""
        if isinstance(self.cluster, SimCluster):
            candidates = self.cluster.server_nodes
        else:
            candidates = self.cluster.servers
        return [sid for sid in candidates
                if self._server(sid).available]
