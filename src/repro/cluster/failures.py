"""Failure injection for tests and examples.

Swarm's failure model: storage servers can crash (stop answering) and
later restart with their durable state; clients can crash, losing their
buffered log tail but recovering via rollforward. The injector wraps
both, plus scheduled mid-run crashes inside the simulator and two
*silent* durable faults — bit corruption and torn (truncated) stores —
that servers by design cannot detect themselves: Swarm checksums live
in fragment headers and are verified by clients.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.cluster.cluster import LocalCluster, SimCluster
from repro.errors import FragmentNotFoundError
from repro.server.server import StorageServer


class FailureInjector:
    """Crash/restart servers in a local or simulated cluster."""

    def __init__(self, cluster: Union[LocalCluster, SimCluster]) -> None:
        self.cluster = cluster
        self.crashed: List[str] = []

    def _server(self, server_id: str) -> StorageServer:
        if isinstance(self.cluster, SimCluster):
            return self.cluster.server_nodes[server_id].server
        return self.cluster.servers[server_id]

    def _mark_crashed(self, server_id: str) -> None:
        if server_id not in self.crashed:
            self.crashed.append(server_id)

    def is_crashed(self, server_id: str) -> bool:
        """Whether the injector currently tracks ``server_id`` as down.

        Kept consistent with the server's own ``available`` flag even
        when something else (a scheduled crash, a direct ``crash()``
        call in a test) took the server down: the ground truth is the
        server, the list is the ledger.
        """
        if not self._server(server_id).available:
            self._mark_crashed(server_id)
        elif server_id in self.crashed:
            self.crashed.remove(server_id)
        return server_id in self.crashed

    def crash_server(self, server_id: str) -> None:
        """Stop a server immediately."""
        self._server(server_id).crash()
        self._mark_crashed(server_id)

    def restart_server(self, server_id: str) -> None:
        """Restart a crashed server with its durable state."""
        self._server(server_id).restart()
        if server_id in self.crashed:
            self.crashed.remove(server_id)

    def crash_server_at(self, server_id: str, sim_time: float) -> None:
        """Schedule a server crash at a simulated time (SimCluster only).

        The server is tracked as crashed only once the simulated clock
        reaches ``sim_time`` (via :meth:`crash_server` inside the
        process), not at scheduling time.
        """
        if not isinstance(self.cluster, SimCluster):
            raise TypeError("timed crashes need a SimCluster")
        sim = self.cluster.sim

        def crash_process():
            yield sim.timeout(sim_time - sim.now if sim_time > sim.now else 0)
            self.crash_server(server_id)

        sim.process(crash_process(), name="crash %s" % server_id)

    def wipe_server(self, server_id: str) -> None:
        """Simulate total media loss: crash and discard durable state.

        Afterwards every fragment the server held must be reconstructed
        from stripe parity (see
        :meth:`repro.log.reconstruct.Reconstructor.rebuild_to_server`).
        """
        from repro.server.backend import MemoryBackend

        self.crash_server(server_id)
        self._server(server_id).backend = MemoryBackend()

    def alive_servers(self) -> List[str]:
        """Servers currently answering."""
        if isinstance(self.cluster, SimCluster):
            candidates = self.cluster.server_nodes
        else:
            candidates = self.cluster.servers
        return [sid for sid in sorted(candidates)
                if self._server(sid).available]

    # ------------------------------------------------------------------
    # Silent durable faults (clients must detect these, servers cannot)
    # ------------------------------------------------------------------

    def _slot_bytes(self, server: StorageServer,
                    fid: int) -> Tuple[int, bytes]:
        info = server.slots.info_of(fid)
        if info is None or info.get("preallocated"):
            raise FragmentNotFoundError(
                "no fragment %d on %s to damage" % (fid, server.server_id))
        data = server.backend.read_slot(info["slot"])
        if data is None:
            raise FragmentNotFoundError(
                "fragment %d on %s has no slot data" % (fid, server.server_id))
        return info["slot"], bytes(data)

    def corrupt_fragment(self, server_id: str, fid: int,
                         bit_index: int = 0) -> None:
        """Flip one bit of a stored fragment's durable image.

        The server keeps serving the damaged bytes without complaint;
        only a client verifying the header/payload CRCs notices.
        ``bit_index`` is taken modulo the image size so callers can pass
        any non-negative value.
        """
        server = self._server(server_id)
        slot, data = self._slot_bytes(server, fid)
        bit_index %= len(data) * 8
        damaged = bytearray(data)
        damaged[bit_index // 8] ^= 1 << (bit_index % 8)
        server.backend.write_slot(slot, bytes(damaged))
        server.invalidate_cache(fid)

    def tear_fragment(self, server_id: str, fid: int,
                      keep_fraction: float = 0.5) -> None:
        """Truncate a stored fragment to a durable prefix.

        Models a store interrupted mid-write on a platter that commits
        sectors in order: the prefix is durable, the tail is gone.
        """
        if not 0.0 <= keep_fraction < 1.0:
            raise ValueError("keep_fraction must be in [0, 1)")
        server = self._server(server_id)
        slot, data = self._slot_bytes(server, fid)
        keep = int(len(data) * keep_fraction)
        server.backend.write_slot(slot, data[:keep])
        server.invalidate_cache(fid)
