"""Simulated client drivers.

A :class:`SimClientDriver` runs the functional log layer inside a
simulator process: it charges the client CPU for the byte work the log
layer reports (copies, parity XOR, per-block bookkeeping), lets fragment
stores proceed asynchronously, and applies the paper's rudimentary flow
control by capping the number of fragment stores in flight.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.cluster.cluster import SimCluster
from repro.log.layer import LogLayer
from repro.rpc import messages as m


class CostLedger:
    """Accumulates the log layer's reported work, by kind."""

    def __init__(self) -> None:
        self.byte_counts: Dict[str, int] = {}

    def add(self, kind: str, amount: int) -> None:
        """Cost-hook entry point (bound to ``LogLayer.cost_hook``)."""
        self.byte_counts[kind] = self.byte_counts.get(kind, 0) + amount

    def drain_seconds(self, cpu_model) -> float:
        """Convert and clear the accumulated work into CPU seconds."""
        params = cpu_model.params
        seconds = (
            self.byte_counts.get("copy", 0) * params.copy_per_byte
            + self.byte_counts.get("xor", 0) * params.xor_per_byte
            + self.byte_counts.get("block_op", 0) * params.per_block_overhead_s)
        self.byte_counts.clear()
        return seconds


class SimClientDriver:
    """Drives one simulated client's log through write/read workloads."""

    def __init__(self, cluster: SimCluster, client_index: int,
                 group=None) -> None:
        self.cluster = cluster
        self.client_index = client_index
        self.node = cluster.client_node(client_index)
        self.ledger = CostLedger()
        self.log: LogLayer = cluster.make_log(client_index, group=group,
                                              cost_hook=self.ledger.add)
        self.blocks_written = 0
        self.bytes_read = 0

    # ------------------------------------------------------------------

    def _charge_cpu(self) -> Generator:
        seconds = self.ledger.drain_seconds(self.cluster.cpu_model)
        if seconds > 0:
            yield from self.node.cpu.compute(seconds)

    def _throttle(self) -> Generator:
        """Enforce the fragment-store flow-control window."""
        window = self.log.config.max_outstanding_fragments
        pending = [e for e in self.log.pending_events() if not e.triggered]
        while len(pending) > window:
            yield self.cluster.sim.any_of(pending)
            pending = [e for e in pending if not e.triggered]
        # Stripe-level write-behind window. Inside the simulation the
        # log layer cannot block at stripe close, so its window is
        # advisory there; the driver enforces it between appends by
        # waiting on the oldest in-flight stripe's stores. The stripe
        # window bounds buffered-stripe memory *on top of* the paper's
        # fragment flow control — never below it: for narrow groups
        # (a stripe of one or two fragments) the fragment window needs
        # more stripes in flight to keep §2.1.2's pipeline full.
        stripe_window = max(
            self.log.config.max_inflight_stripes,
            -(-self.log.config.max_outstanding_fragments
              // self.log.layout.max_data_fragments()))
        while self.log.inflight_stripes() > stripe_window:
            oldest = self.log.oldest_inflight_events()
            if not oldest:
                break
            yield self.cluster.sim.any_of(oldest)

    # ------------------------------------------------------------------

    def write_blocks(self, count: int, block_size: int,
                     service_id: int = 1,
                     charge_every: int = 16) -> Generator:
        """Process: append ``count`` blocks of ``block_size`` bytes, then
        flush; returns (useful_bytes, raw_bytes).

        CPU work is charged in batches of ``charge_every`` blocks to
        keep simulator event counts manageable without changing totals.
        """
        payload = b"\xab" * block_size
        for i in range(count):
            self.log.write_block(service_id, payload,
                                 create_info=i.to_bytes(8, "big"))
            self.blocks_written += 1
            if (i + 1) % charge_every == 0:
                yield from self._charge_cpu()
                yield from self._throttle()
        yield from self._charge_cpu()
        ticket = self.log.flush()
        if ticket.events:
            yield self.cluster.sim.all_of(ticket.events)
        # Now that every store has resolved, fold late failures into
        # the layer's per-server accounting.
        ticket.failures()
        return (self.log.useful_bytes_written, self.log.raw_bytes_written)

    def read_blocks(self, addresses: List, service_id: int = 1) -> Generator:
        """Process: read each address synchronously (round-trip bound),
        charging receive-side CPU; returns total bytes read.

        Models the prototype's un-prefetched read path: one RPC per
        block, no overlap — which is why it only reached 1.7 MB/s.
        """
        transport = self.log.transport
        total = 0
        # Batch the location lookups for every address we do not already
        # know: at most one broadcast (one RPC per server) up front.
        self.log.locations.locate_many(
            [addr.fid for addr in addresses])
        for addr in addresses:
            server_id = self.log.locations.locate(addr.fid)
            request = m.RetrieveRequest(fid=addr.fid, offset=addr.offset,
                                        length=addr.length,
                                        principal=self.log.config.principal)
            response = yield transport.submit(server_id, request)
            total += len(response.payload)
        self.bytes_read = total
        return total
