"""Cluster assembly: functional and simulated Swarm deployments.

:func:`build_local_cluster` wires servers and clients in plain Python
for correctness work; :class:`SimCluster` builds the calibrated 1999
testbed (200 MHz nodes, 100 Mb/s switched Ethernet, 10.3 MB/s disks)
for the benchmark figures. Failure injection lives in
:mod:`repro.cluster.failures`.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.cluster import (
    LocalCluster,
    SimCluster,
    build_local_cluster,
)
from repro.cluster.client import SimClientDriver
from repro.cluster.failures import FailureInjector

__all__ = [
    "ClusterConfig",
    "LocalCluster",
    "SimCluster",
    "build_local_cluster",
    "SimClientDriver",
    "FailureInjector",
]
