"""Cluster construction.

Two deployment styles share the same functional components:

* :class:`LocalCluster` — servers and clients wired directly
  (``LocalTransport``); everything is synchronous and timeless. Used by
  correctness tests and examples.
* :class:`SimCluster` — every node gets a CPU model, every server a
  disk, everyone hangs off one switched-Ethernet model, and transports
  route operations through the discrete-event engine. Used by the
  benchmark harness to regenerate the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.log.config import LogConfig
from repro.log.fragment import MAX_STRIPE_WIDTH
from repro.log.layer import LogLayer
from repro.log.stripe import StripeGroup
from repro.placement import SequentialCheckingPlacement
from repro.rpc.transport import LocalTransport, SimTransport
from repro.server.config import ServerConfig
from repro.server.server import StorageServer
from repro.sim.core import Simulator
from repro.sim.cpu import CpuModel, SimCpu
from repro.sim.disk import SimDisk
from repro.sim.network import Nic, Switch
from repro.services.stack import ServiceStack


@dataclass
class ServerNode:
    """A simulated storage-server machine."""

    server: StorageServer
    cpu: SimCpu
    disk: SimDisk
    nic: Nic


@dataclass
class ClientNode:
    """A simulated client machine."""

    name: str
    cpu: SimCpu
    nic: Nic


class LocalCluster:
    """Functional (timeless) deployment of servers plus client slots."""

    def __init__(self, config: ClusterConfig, verify_codec: bool = False) -> None:
        self.config = config
        self.servers: Dict[str, StorageServer] = {}
        for index in range(config.num_servers):
            server_id = config.server_id(index)
            self.servers[server_id] = StorageServer(ServerConfig(
                server_id=server_id, fragment_size=config.fragment_size,
                total_slots=config.server_slots,
                enforce_acls=config.enforce_acls))
        self.transport = LocalTransport(self.servers, verify_codec=verify_codec)

    def stripe_group(self, server_ids: Optional[List[str]] = None) -> StripeGroup:
        """A stripe group over the given servers (default: all)."""
        return StripeGroup(tuple(server_ids or self.servers))

    def fleet(self) -> Tuple[str, ...]:
        """Every server of this cluster, in construction order."""
        return tuple(self.servers)

    def make_placement(self, stripe_width: int = 8,
                       parity_fragments: int = 1,
                       spare_servers: Sequence[str] = (),
                       view_servers: Optional[Sequence[str]] = None,
                       ) -> SequentialCheckingPlacement:
        """A reallocation-free placement policy over the whole fleet.

        Each client needs its *own* policy instance (policies carry
        per-client view history); pass the result as ``group`` to
        :meth:`make_log` / :meth:`make_stack`.
        """
        return SequentialCheckingPlacement(
            self.fleet(), stripe_width=stripe_width,
            parity_fragments=parity_fragments,
            spare_servers=spare_servers, view_servers=view_servers)

    def _default_group(self, config_overrides):
        """Default placement: the all-servers stripe group, or — when
        the fleet is wider than a stripe may be — a sequential-checking
        policy over the whole fleet."""
        if self.config.num_servers <= MAX_STRIPE_WIDTH:
            return self.stripe_group()
        return self.make_placement(
            parity_fragments=config_overrides.get("parity_fragments", 1),
            spare_servers=config_overrides.get("spare_servers", ()))

    def serve_tcp(self, pool_size: int = 2, window: int = 32):
        """Host every server on loopback TCP; returns ``(host, transport)``.

        The servers stay the same in-process objects (so tests keep
        direct references for crash injection and opcount assertions),
        but the returned transport reaches them over real sockets.
        Close the transport before the host when done; both are context
        managers.
        """
        from repro.rpc.net import InProcessHost, TcpTransport

        host = InProcessHost(self.servers).start()
        transport = TcpTransport(host.addresses,
                                 pool_size=pool_size, window=window)
        return host, transport

    def make_log(self, client_id: int,
                 group=None,
                 retry_policy=None, verify_reads: bool = False,
                 transport=None,
                 **config_overrides) -> LogLayer:
        """A log layer for one client over this cluster.

        ``group`` may be a :class:`StripeGroup` or any placement
        policy; the default stripes over all servers (switching to a
        :class:`SequentialCheckingPlacement` when the fleet exceeds
        ``MAX_STRIPE_WIDTH``). ``retry_policy`` interposes a
        :class:`~repro.rpc.retry.RetryingTransport`; ``verify_reads``
        checks every fetched fragment's payload CRC and falls back to
        parity reconstruction on a mismatch. ``transport`` overrides
        the cluster's direct transport (e.g. the TCP plane from
        :meth:`serve_tcp`, or a fault-injecting wrapper). Extra keyword
        arguments (``parity_fragments``, ``coding``, ``spare_servers``,
        ...) pass straight through to :class:`LogConfig`.
        """
        if group is None:
            group = self._default_group(config_overrides)
        return LogLayer(transport if transport is not None else self.transport,
                        group,
                        LogConfig(client_id=client_id,
                                  fragment_size=self.config.fragment_size,
                                  **config_overrides),
                        retry_policy=retry_policy, verify_reads=verify_reads)

    def make_stack(self, client_id: int,
                   group=None,
                   retry_policy=None,
                   verify_reads: bool = False,
                   transport=None,
                   **config_overrides) -> ServiceStack:
        """An empty service stack for one client."""
        return ServiceStack(self.make_log(client_id, group,
                                          retry_policy=retry_policy,
                                          verify_reads=verify_reads,
                                          transport=transport,
                                          **config_overrides))


def build_local_cluster(num_servers: int = 4, num_clients: int = 1,
                        fragment_size: int = 1 << 20,
                        verify_codec: bool = False, **kwargs) -> LocalCluster:
    """Convenience constructor for functional clusters."""
    return LocalCluster(ClusterConfig(
        num_servers=num_servers, num_clients=num_clients,
        fragment_size=fragment_size, **kwargs), verify_codec=verify_codec)


class SimCluster:
    """The calibrated simulated testbed."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.sim = Simulator()
        self.switch = Switch(self.sim, config.network)
        self.cpu_model = CpuModel(config.cpu)
        self.server_nodes: Dict[str, ServerNode] = {}
        for index in range(config.num_servers):
            server_id = config.server_id(index)
            server = StorageServer(ServerConfig(
                server_id=server_id, fragment_size=config.fragment_size,
                total_slots=config.server_slots,
                enforce_acls=config.enforce_acls))
            self.server_nodes[server_id] = ServerNode(
                server=server,
                cpu=SimCpu(self.sim, "%s.cpu" % server_id, config.cpu),
                disk=SimDisk(self.sim, "%s.disk" % server_id, config.disk),
                nic=self.switch.attach(server_id))
        self.client_nodes: Dict[str, ClientNode] = {}
        for index in range(config.num_clients):
            name = config.client_name(index)
            self.client_nodes[name] = ClientNode(
                name=name,
                cpu=SimCpu(self.sim, "%s.cpu" % name, config.cpu),
                nic=self.switch.attach(name))

    # ------------------------------------------------------------------

    def client_node(self, index: int) -> ClientNode:
        """The simulated machine of client ``index``."""
        return self.client_nodes[self.config.client_name(index)]

    def make_transport(self, client_index: int,
                       deferred_mode: bool = False) -> SimTransport:
        """A transport for client ``client_index`` over this testbed."""
        return SimTransport(self.sim, self.switch,
                            self.client_node(client_index),
                            self.server_nodes, self.cpu_model,
                            deferred_mode=deferred_mode)

    def stripe_group(self, server_ids: Optional[List[str]] = None) -> StripeGroup:
        """A stripe group over the given servers (default: all)."""
        return StripeGroup(tuple(server_ids or self.server_nodes))

    def fleet(self) -> Tuple[str, ...]:
        """Every server of this testbed, in construction order."""
        return tuple(self.server_nodes)

    def make_placement(self, stripe_width: int = 8,
                       parity_fragments: int = 1,
                       spare_servers: Sequence[str] = (),
                       view_servers: Optional[Sequence[str]] = None,
                       ) -> SequentialCheckingPlacement:
        """A reallocation-free placement policy over the whole fleet
        (one instance per client — policies carry per-client history)."""
        return SequentialCheckingPlacement(
            self.fleet(), stripe_width=stripe_width,
            parity_fragments=parity_fragments,
            spare_servers=spare_servers, view_servers=view_servers)

    def _default_group(self, config_overrides):
        if self.config.num_servers <= MAX_STRIPE_WIDTH:
            return self.stripe_group()
        return self.make_placement(
            parity_fragments=config_overrides.get("parity_fragments", 1),
            spare_servers=config_overrides.get("spare_servers", ()))

    def make_log(self, client_index: int,
                 group=None,
                 cost_hook: Optional[Callable[[str, int], None]] = None,
                 deferred_mode: bool = False,
                 retry_policy=None, verify_reads: bool = False,
                 **config_overrides) -> LogLayer:
        """A log layer for one simulated client.

        Extra keyword arguments (``parity_fragments``, ``coding``, ...)
        pass straight through to :class:`LogConfig`. ``group`` accepts
        a :class:`StripeGroup` or a placement policy; fleets wider than
        ``MAX_STRIPE_WIDTH`` default to sequential-checking placement.
        """
        transport = self.make_transport(client_index, deferred_mode)
        if group is None:
            group = self._default_group(config_overrides)
        return LogLayer(
            transport, group,
            LogConfig(client_id=client_index + 1,
                      fragment_size=self.config.fragment_size,
                      max_outstanding_fragments=self.config.max_outstanding_fragments,
                      max_inflight_stripes=self.config.max_inflight_stripes,
                      **config_overrides),
            cost_hook=cost_hook,
            retry_policy=retry_policy, verify_reads=verify_reads)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def crash_server(self, server_id: str) -> None:
        """Take a server down (it stops answering immediately)."""
        self.server_nodes[server_id].server.crash()

    def restart_server(self, server_id: str) -> None:
        """Bring a crashed server back with its durable state."""
        self.server_nodes[server_id].server.restart()

    # ------------------------------------------------------------------
    # Measurement helpers
    # ------------------------------------------------------------------

    def total_bytes_stored(self) -> int:
        """Bytes accepted by all servers so far."""
        return sum(node.server.bytes_stored
                   for node in self.server_nodes.values())

    def disk_utilizations(self) -> Dict[str, float]:
        """Per-server disk-arm utilization over the simulated run."""
        return {server_id: node.disk.utilization()
                for server_id, node in self.server_nodes.items()}
