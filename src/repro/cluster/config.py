"""Cluster-level configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.server.config import DEFAULT_FRAGMENT_SIZE
from repro.sim.cpu import CpuParams
from repro.sim.disk import DiskParams
from repro.sim.network import NetworkParams


@dataclass(frozen=True)
class ClusterConfig:
    """Shape and hardware parameters of one Swarm deployment.

    The defaults describe the paper's testbed: some number of storage
    servers and clients, 1 MB fragments, and the calibrated 1999
    network/disk/CPU models. ``server_slots`` bounds each server's disk
    in fragments (4096 slots × 1 MB ≈ a 4 GB late-90s disk).
    """

    num_servers: int = 4
    num_clients: int = 1
    fragment_size: int = DEFAULT_FRAGMENT_SIZE
    server_slots: int = 4096
    enforce_acls: bool = False
    network: NetworkParams = field(default_factory=NetworkParams)
    disk: DiskParams = field(default_factory=DiskParams)
    cpu: CpuParams = field(default_factory=CpuParams)
    max_outstanding_fragments: int = 4
    max_inflight_stripes: int = 2

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ConfigError("need at least one server")
        if self.num_clients < 1:
            raise ConfigError("need at least one client")

    def server_id(self, index: int) -> str:
        """Canonical name of server ``index``."""
        return "s%d" % index

    def client_name(self, index: int) -> str:
        """Canonical network name of client ``index``."""
        return "c%d" % index
