"""Baselines the paper compares against.

The Modified Andrew Benchmark (Figure 5) pits Sting against ext2fs on a
local disk. :mod:`repro.baselines.ext2` implements a functional
FFS/ext2-style file system — inode table, block bitmap, directories,
buffer cache — whose operations are charged to the same 1999 disk model
the Swarm servers use, preserving exactly the access-pattern difference
the comparison hinges on: ext2's scattered synchronous metadata writes
versus Sting's 1 MB sequential log writes.
"""

from repro.baselines.ext2 import Ext2Fs, Ext2Params

__all__ = ["Ext2Fs", "Ext2Params"]
