"""An ext2/FFS-style local file system with honest disk timing.

This is the Figure 5 baseline. It is a *working* file system — real
inodes, a real block bitmap, real directory blocks, a write-back buffer
cache — not just a cost formula. Every block it touches lands at a
realistic disk position:

* the inode table and block bitmap live near the front of the disk,
* directory and file data blocks are allocated from a moving allocator
  with modest locality (ext2's block groups, abstracted),
* metadata updates (inode, directory block, bitmap) are written through
  to disk synchronously-ish, as 1999 Linux did for ordering,
* file data sits in the buffer cache until ``sync``/``unmount``
  writes it back sorted by position.

The timing ledger replays every disk access through the same
:class:`~repro.sim.disk.DiskModel` the Swarm servers use, so the MAB
comparison measures exactly what the paper says it measures: Sting
"makes much better use of the disk by writing data sequentially to the
log ... in 1 MB fragments", while ext2 seeks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.errors import (
    DirectoryNotEmptyFsError,
    FileExistsFsError,
    FileNotFoundFsError,
    FileSystemError,
    IsADirectoryFsError,
    NotADirectoryFsError,
)
from repro.sim.disk import DiskModel, DiskParams
from repro.sting.path import split_parent, split_path

BLOCK_SIZE = 4096

# Disk layout regions, in "slot" coordinates (1 MB units) compatible
# with the DiskModel's position arithmetic.
_INODE_REGION = 0.0
_BITMAP_REGION = 8.0
_DATA_REGION = 16.0


@dataclass(frozen=True)
class Ext2Params:
    """Behavioural knobs for the baseline.

    ``metadata_writethrough`` models 1999 Linux ordering: inode,
    directory, and bitmap updates hit the disk when they happen.
    ``atime_updates`` charges the inode write that every read triggered
    (mounts did not use noatime then). ``allocator_clustering`` is how
    many consecutive data blocks the allocator can usually place
    contiguously before seeking to a new free extent.
    """

    metadata_writethrough: bool = True
    atime_updates: bool = True
    allocator_clustering: int = 4
    eager_writeback: bool = True
    """bdflush-era behaviour: file data drains to disk within seconds of
    the write, interleaved with ongoing metadata traffic (more seeks),
    rather than in one sorted elevator pass at unmount."""


@dataclass
class Ext2Inode:
    """A baseline inode."""

    ino: int
    is_dir: bool
    size: int = 0
    blocks: List[int] = field(default_factory=list)
    entries: Dict[str, int] = field(default_factory=dict)


class DiskLedger:
    """Accumulates disk accesses and converts them to seconds."""

    def __init__(self, model: DiskModel) -> None:
        self.model = model
        self._last_position = -1.0
        self.busy_seconds = 0.0
        self.accesses = 0

    def access(self, size_bytes: int, position: float) -> None:
        """Charge one disk request at ``position`` (MB coordinates)."""
        sequential = (self._last_position >= 0
                      and -1e-9 <= position - self._last_position < 0.05)
        nearby = (self._last_position >= 0
                  and abs(position - self._last_position) <= 1.0)
        self.busy_seconds += self.model.access_time(
            size_bytes, sequential=sequential, nearby=nearby)
        self._last_position = position + size_bytes / float(1 << 20)
        self.accesses += 1


class Ext2Fs:
    """The functional baseline file system."""

    ROOT_INO = 2  # ext2 tradition

    def __init__(self, params: Ext2Params = Ext2Params(),
                 disk: DiskParams = DiskParams()) -> None:
        self.params = params
        self.ledger = DiskLedger(DiskModel(disk))
        self._inodes: Dict[int, Ext2Inode] = {}
        self._next_ino = self.ROOT_INO
        self._next_block = 0
        self._cluster_left = 0
        self._blocks: Dict[int, bytes] = {}
        self._dirty_data: Set[int] = set()
        self._free_blocks: List[int] = []
        root = self._alloc_inode(is_dir=True)
        assert root.ino == self.ROOT_INO

    # ------------------------------------------------------------------
    # Low-level allocation and IO charging
    # ------------------------------------------------------------------

    def _alloc_inode(self, is_dir: bool) -> Ext2Inode:
        inode = Ext2Inode(ino=self._next_ino, is_dir=is_dir)
        self._next_ino += 1
        self._inodes[inode.ino] = inode
        return inode

    def _alloc_block(self) -> int:
        if self._free_blocks:
            self._cluster_left = 0
            return self._free_blocks.pop()
        block = self._next_block
        self._next_block += 1
        return block

    def _block_position(self, block: int) -> float:
        return _DATA_REGION + block * (BLOCK_SIZE / float(1 << 20))

    def _inode_position(self, ino: int) -> float:
        return _INODE_REGION + (ino % 1024) * (128 / float(1 << 20))

    def _charge_inode_write(self, ino: int) -> None:
        if self.params.metadata_writethrough:
            self.ledger.access(BLOCK_SIZE, self._inode_position(ino))

    def _charge_bitmap_write(self) -> None:
        if self.params.metadata_writethrough:
            self.ledger.access(BLOCK_SIZE, _BITMAP_REGION)

    def _charge_dir_write(self, inode: Ext2Inode) -> None:
        if self.params.metadata_writethrough:
            position = (self._block_position(inode.blocks[0])
                        if inode.blocks else _DATA_REGION)
            self.ledger.access(BLOCK_SIZE, position)

    # ------------------------------------------------------------------
    # Namespace
    # ------------------------------------------------------------------

    def _lookup(self, path: str) -> Ext2Inode:
        inode = self._inodes[self.ROOT_INO]
        for part in split_path(path):
            if not inode.is_dir:
                raise NotADirectoryFsError("not a directory on path %r" % path)
            child = inode.entries.get(part)
            if child is None:
                raise FileNotFoundFsError("no such path: %r" % path)
            inode = self._inodes[child]
        return inode

    def _lookup_parent(self, path: str) -> Tuple[Ext2Inode, str]:
        parent_path, name = split_parent(path)
        if not name:
            raise FileSystemError("operation on the root directory")
        parent = self._lookup(parent_path)
        if not parent.is_dir:
            raise NotADirectoryFsError("%r is not a directory" % parent_path)
        return parent, name

    def exists(self, path: str) -> bool:
        """Whether ``path`` resolves."""
        try:
            self._lookup(path)
            return True
        except (FileNotFoundFsError, NotADirectoryFsError):
            return False

    def mkdir(self, path: str) -> int:
        """Create a directory; charges dir block + inode + bitmap writes."""
        parent, name = self._lookup_parent(path)
        if name in parent.entries:
            raise FileExistsFsError("path exists: %r" % path)
        child = self._alloc_inode(is_dir=True)
        child.blocks.append(self._alloc_block())
        parent.entries[name] = child.ino
        self._charge_dir_write(parent)
        self._charge_inode_write(child.ino)
        self._charge_inode_write(parent.ino)   # parent mtime/link count
        self._charge_bitmap_write()
        return child.ino

    def create(self, path: str, data: bytes = b"") -> int:
        """Create a regular file with ``data``."""
        parent, name = self._lookup_parent(path)
        if name in parent.entries:
            raise FileExistsFsError("path exists: %r" % path)
        child = self._alloc_inode(is_dir=False)
        parent.entries[name] = child.ino
        self._charge_dir_write(parent)
        self._charge_inode_write(child.ino)
        self._charge_inode_write(parent.ino)   # parent mtime
        if data:
            self._write_data(child, data)
        return child.ino

    def write_file(self, path: str, data: bytes) -> None:
        """Create or replace ``path`` with ``data``."""
        try:
            inode = self._lookup(path)
        except FileNotFoundFsError:
            self.create(path, data)
            return
        if inode.is_dir:
            raise IsADirectoryFsError("%r is a directory" % path)
        self._release_blocks(inode)
        self._write_data(inode, data)

    def _write_data(self, inode: Ext2Inode, data: bytes) -> None:
        nblocks = (len(data) + BLOCK_SIZE - 1) // BLOCK_SIZE
        for i in range(nblocks):
            block = self._alloc_block()
            inode.blocks.append(block)
            self._blocks[block] = data[i * BLOCK_SIZE:(i + 1) * BLOCK_SIZE]
            if self.params.eager_writeback:
                # bdflush drains it shortly; the arm comes from the
                # metadata regions, so each file's extent pays a seek.
                cluster = max(1, self.params.allocator_clustering)
                self.ledger.access(BLOCK_SIZE, self._block_position(block)
                                   + 0.5 * (i // cluster))
            else:
                self._dirty_data.add(block)
        inode.size = len(data)
        self._charge_inode_write(inode.ino)
        self._charge_bitmap_write()

    def read_file(self, path: str) -> bytes:
        """Read a whole file; charges data reads (if uncached) and the
        atime inode write-back."""
        inode = self._lookup(path)
        if inode.is_dir:
            raise IsADirectoryFsError("%r is a directory" % path)
        out = bytearray()
        for block in inode.blocks:
            chunk = self._blocks.get(block, b"")
            if block not in self._dirty_data and block not in self._blocks:
                self.ledger.access(BLOCK_SIZE, self._block_position(block))
            out += chunk
        if self.params.atime_updates:
            self._charge_inode_write(inode.ino)
        return bytes(out[:inode.size])

    def stat(self, path: str) -> Ext2Inode:
        """Resolve ``path`` (in-core; no disk charge — caches were warm
        for MAB's scan phase on both systems)."""
        return self._lookup(path)

    def listdir(self, path: str) -> List[str]:
        """Sorted directory entries."""
        inode = self._lookup(path)
        if not inode.is_dir:
            raise NotADirectoryFsError("%r is not a directory" % path)
        return sorted(inode.entries)

    def unlink(self, path: str) -> None:
        """Remove a file; charges dir + inode + bitmap writes."""
        parent, name = self._lookup_parent(path)
        ino = parent.entries.get(name)
        if ino is None:
            raise FileNotFoundFsError("no such path: %r" % path)
        inode = self._inodes[ino]
        if inode.is_dir:
            raise IsADirectoryFsError("%r is a directory" % path)
        self._release_blocks(inode)
        del parent.entries[name]
        del self._inodes[ino]
        self._charge_dir_write(parent)
        self._charge_inode_write(ino)
        self._charge_bitmap_write()

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        parent, name = self._lookup_parent(path)
        ino = parent.entries.get(name)
        if ino is None:
            raise FileNotFoundFsError("no such path: %r" % path)
        inode = self._inodes[ino]
        if not inode.is_dir:
            raise NotADirectoryFsError("%r is not a directory" % path)
        if inode.entries:
            raise DirectoryNotEmptyFsError("directory not empty: %r" % path)
        self._release_blocks(inode)
        del parent.entries[name]
        del self._inodes[ino]
        self._charge_dir_write(parent)
        self._charge_inode_write(ino)
        self._charge_bitmap_write()

    def _release_blocks(self, inode: Ext2Inode) -> None:
        for block in inode.blocks:
            self._blocks.pop(block, None)
            self._dirty_data.discard(block)
            self._free_blocks.append(block)
        inode.blocks = []
        inode.size = 0

    # ------------------------------------------------------------------
    # Write-back
    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Write back dirty data blocks, sorted by position — the kernel
        elevator — with the allocator's clustering limiting how many
        blocks are contiguous on disk."""
        cluster = max(1, self.params.allocator_clustering)
        dirty = sorted(self._dirty_data)
        for index, block in enumerate(dirty):
            # Each extent of `cluster` blocks is contiguous; extents are
            # scattered (shifted by half a cylinder group per extent).
            position = (self._block_position(block)
                        + 0.5 * (1 + index // cluster))
            self.ledger.access(BLOCK_SIZE, position)
        self._dirty_data.clear()

    def unmount(self) -> None:
        """Flush everything: data write-back plus superblock/bitmaps."""
        self.sync()
        self.ledger.access(BLOCK_SIZE, 0.0)          # superblock
        self._charge_bitmap_write()

    # ------------------------------------------------------------------

    @property
    def disk_seconds(self) -> float:
        """Total disk-busy time charged so far."""
        return self.ledger.busy_seconds
