"""Self-healing: failure detection, automatic reform, background repair.

The paper's availability claim — a client "continues operating despite
a server failure" — needs three cooperating pieces, and this package
closes that loop:

* :class:`~repro.health.monitor.HealthMonitor` — a per-server failure
  detector fed by the retry layer's RPC outcomes. An EWMA of failures
  plus consecutive-failure counting moves a server ``healthy →
  suspect → dead``; seeded idempotent probes grant probation and
  readmission once the server answers again.
* Automatic stripe-group reform — the log layer subscribes to the
  monitor and, on a ``dead`` verdict, reforms its group onto a spare
  (declared in :class:`~repro.log.config.LogConfig`) without operator
  intervention. See :meth:`~repro.log.layer.LogLayer.enable_auto_heal`.
* :class:`~repro.health.repair.RepairDaemon` — a background scrubber
  that enumerates stripes touching a dead server, re-materializes the
  lost fragments onto the replacement under a repair-bandwidth
  throttle, and records progress so a crashed repair resumes instead
  of restarting.
"""

from repro.health.monitor import (
    DEAD,
    HEALTHY,
    HealthConfig,
    HealthMonitor,
    PROBATION,
    ServerHealth,
    SUSPECT,
)
from repro.health.repair import RepairDaemon

__all__ = [
    "DEAD",
    "HEALTHY",
    "HealthConfig",
    "HealthMonitor",
    "PROBATION",
    "RepairDaemon",
    "ServerHealth",
    "SUSPECT",
]
