"""Per-server failure detection.

The monitor never issues traffic of its own for scoring: it is *fed*
by the layers that already talk to servers — every attempt outcome the
:class:`~repro.rpc.retry.RetryingTransport` sees (synchronous calls,
scatter fan-outs, retry exhaustions) becomes one observation here. The
score per server is two signals the spec-sheet failure detectors
(Lustre's health network, SWIM-style suspicion) also use:

* an **EWMA of failures** — smooth evidence, robust to one-off drops;
* a **consecutive-failure count** — sharp evidence; a chaos plan with
  bounded fault bursts can never push a *live* server past a small
  count, so a long run of straight failures means the server is down,
  not flaky.

State machine::

    healthy --(ewma high + consecutive)--> suspect
    suspect --(more consecutive / retry exhaustions)--> dead
    dead    --(successful probe or call)--> probation
    probation --(readmit_probes successes)--> healthy
    probation --(any failure)--> dead

Verdicts are *pushed*: subscribers (the log layer's auto-reform hook)
register callbacks and are told about every transition synchronously,
so a ``dead`` verdict raised mid-write can reform the stripe group
before the next stripe is placed.

Probing is seeded and deterministic: every ``probe_interval``
observations the monitor sends one idempotent ``HoldsRequest`` (empty
fid list — pure liveness, no side effects) to the next non-healthy
server in rotation. A replayed chaos run therefore probes at the same
points and makes identical readmission decisions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError, SwarmError

HEALTHY = "healthy"
SUSPECT = "suspect"
DEAD = "dead"
PROBATION = "probation"

TransitionHook = Callable[[str, str, str], None]
"""``hook(server_id, old_status, new_status)``."""


@dataclass(frozen=True)
class HealthConfig:
    """Detector thresholds.

    The defaults are tuned against the chaos engine's survivable
    envelope: a fault plan forces a clean call after ``max_consecutive``
    (default 3) consecutive faulted calls to one server, so a *live*
    server never accumulates more than 3 straight failures — while a
    crashed one fails every call. ``dead_consecutive`` (6) and
    ``dead_exhaustions`` (2) therefore only ever fire on servers that
    are genuinely unreachable, never on merely flaky ones.
    """

    ewma_alpha: float = 0.3
    """Weight of the newest observation in the failure EWMA."""
    suspect_ewma: float = 0.5
    """EWMA at or above which a server may become suspect."""
    suspect_consecutive: int = 3
    """Consecutive failures needed (with the EWMA) to become suspect."""
    dead_consecutive: int = 6
    """Consecutive failures that alone prove a server dead."""
    dead_exhaustions: int = 2
    """Retry exhaustions in a row that prove a server dead."""
    probe_interval: int = 8
    """Observations between automatic probes of non-healthy servers."""
    readmit_probes: int = 3
    """Successes a server in probation needs to be readmitted."""

    def validate(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError("ewma_alpha must be in (0, 1]")
        if not 0.0 <= self.suspect_ewma <= 1.0:
            raise ConfigError("suspect_ewma must be in [0, 1]")
        if self.suspect_consecutive < 1:
            raise ConfigError("suspect_consecutive must be >= 1")
        if self.dead_consecutive < self.suspect_consecutive:
            raise ConfigError("dead_consecutive must be >= suspect_consecutive")
        if self.dead_exhaustions < 1:
            raise ConfigError("dead_exhaustions must be >= 1")
        if self.probe_interval < 1:
            raise ConfigError("probe_interval must be >= 1")
        if self.readmit_probes < 1:
            raise ConfigError("readmit_probes must be >= 1")


@dataclass
class ServerHealth:
    """Everything the monitor knows about one server."""

    server_id: str
    status: str = HEALTHY
    ewma: float = 0.0
    consecutive_failures: int = 0
    consecutive_exhaustions: int = 0
    probation_successes: int = 0
    # Cumulative counters (never reset; read by reports and tests).
    successes: int = 0
    failures: int = 0
    exhaustions: int = 0
    probes: int = 0
    probe_successes: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Flat counter view for :meth:`HealthMonitor.health_report`."""
        return {
            "status": self.status,
            "ewma": self.ewma,
            "consecutive_failures": self.consecutive_failures,
            "consecutive_exhaustions": self.consecutive_exhaustions,
            "successes": self.successes,
            "failures": self.failures,
            "exhaustions": self.exhaustions,
            "probes": self.probes,
            "probe_successes": self.probe_successes,
        }


class HealthMonitor:
    """Scores per-server RPC outcomes into health verdicts.

    Attach it to a :class:`~repro.rpc.retry.RetryingTransport` (pass it
    as the transport's ``monitor``) and every call outcome feeds the
    detector; or drive :meth:`observe` / :meth:`note_exhausted`
    directly in tests.
    """

    def __init__(self, config: Optional[HealthConfig] = None,
                 seed: int = 0) -> None:
        self.config = config if config is not None else HealthConfig()
        self.config.validate()
        self.seed = seed
        self._rng = random.Random(seed)
        self._servers: Dict[str, ServerHealth] = {}
        self._transport = None  # probe channel (below the retry layer)
        self._hooks: List[TransitionHook] = []
        self._observations = 0
        self.transitions: List[Tuple[str, str, str]] = []
        """Every ``(server_id, old, new)`` transition, in order."""

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, transport) -> None:
        """Bind the probe channel and pre-register its servers.

        ``transport`` should sit *below* the retry layer — probes are
        single unretried calls, so a probe against a dead server costs
        one RPC, not a whole backoff ladder.
        """
        self._transport = transport
        for server_id in transport.server_ids():
            self._state(server_id)

    def on_transition(self, hook: TransitionHook) -> None:
        """Subscribe to status transitions (called synchronously)."""
        self._hooks.append(hook)

    def _state(self, server_id: str) -> ServerHealth:
        state = self._servers.get(server_id)
        if state is None:
            state = self._servers[server_id] = ServerHealth(server_id)
        return state

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self, server_id: str) -> str:
        """Current verdict for ``server_id`` (unknown servers: healthy)."""
        return self._state(server_id).status

    def is_usable(self, server_id: str) -> bool:
        """Whether new stripes may be placed on ``server_id``."""
        return self._state(server_id).status in (HEALTHY, SUSPECT)

    def dead_servers(self) -> List[str]:
        """Servers currently under a ``dead`` verdict, sorted."""
        return sorted(sid for sid, st in self._servers.items()
                      if st.status == DEAD)

    def health_report(self) -> Dict[str, object]:
        """Structured snapshot: per-server counters plus transitions."""
        return {
            "servers": {sid: state.as_dict()
                        for sid, state in sorted(self._servers.items())},
            "transitions": list(self.transitions),
            "observations": self._observations,
        }

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------

    def observe(self, server_id: str, ok: bool) -> None:
        """Feed one RPC outcome. ``ok`` means the server *answered* —
        a definitive application error (not-found, ACL denial) is still
        proof of life; only unreachability counts as failure."""
        state = self._state(server_id)
        alpha = self.config.ewma_alpha
        self._observations += 1
        if ok:
            state.successes += 1
            state.ewma *= (1.0 - alpha)
            state.consecutive_failures = 0
            state.consecutive_exhaustions = 0
            self._on_success(state)
        else:
            state.failures += 1
            state.ewma = (1.0 - alpha) * state.ewma + alpha
            state.consecutive_failures += 1
            self._on_failure(state)
        self._maybe_probe()

    def note_exhausted(self, server_id: str) -> None:
        """A whole retry ladder against ``server_id`` failed."""
        state = self._state(server_id)
        state.exhaustions += 1
        state.consecutive_exhaustions += 1
        if state.consecutive_exhaustions >= self.config.dead_exhaustions:
            self._transition(state, DEAD)

    def _on_success(self, state: ServerHealth) -> None:
        if state.status == SUSPECT:
            self._transition(state, HEALTHY)
        elif state.status == DEAD:
            # The server answered real traffic: treat like a successful
            # probe — probation, not instant readmission.
            state.probation_successes = 1
            self._transition(state, PROBATION)
        elif state.status == PROBATION:
            state.probation_successes += 1
            if state.probation_successes >= self.config.readmit_probes:
                self._transition(state, HEALTHY)

    def _on_failure(self, state: ServerHealth) -> None:
        cfg = self.config
        if state.status == PROBATION:
            state.probation_successes = 0
            self._transition(state, DEAD)
            return
        if state.consecutive_failures >= cfg.dead_consecutive:
            self._transition(state, DEAD)
            return
        if (state.status == HEALTHY
                and state.consecutive_failures >= cfg.suspect_consecutive
                and state.ewma >= cfg.suspect_ewma):
            self._transition(state, SUSPECT)

    def _transition(self, state: ServerHealth, new_status: str) -> None:
        if state.status == new_status:
            return
        old, state.status = state.status, new_status
        if new_status == HEALTHY:
            state.probation_successes = 0
            state.consecutive_exhaustions = 0
        self.transitions.append((state.server_id, old, new_status))
        for hook in self._hooks:
            hook(state.server_id, old, new_status)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def probe(self, server_id: str) -> bool:
        """Send one idempotent liveness probe; feeds the state machine.

        A successful probe moves ``dead → probation`` and counts toward
        readmission; a failed one confirms the verdict. Returns the
        probe's success. No-op (False) when no transport is attached.
        """
        if self._transport is None:
            return False
        state = self._state(server_id)
        state.probes += 1
        try:
            self._transport.probe(server_id)
        except SwarmError:
            ok = False
        else:
            ok = True
            state.probe_successes += 1
        # Probe outcomes go through the same scoring as real traffic so
        # readmission needs genuine evidence, not one lucky packet.
        self.observe_probe(server_id, ok)
        return ok

    def observe_probe(self, server_id: str, ok: bool) -> None:
        """Score a probe outcome (no recursive probe scheduling)."""
        state = self._state(server_id)
        alpha = self.config.ewma_alpha
        if ok:
            state.ewma *= (1.0 - alpha)
            state.consecutive_failures = 0
            state.consecutive_exhaustions = 0
            self._on_success(state)
        else:
            state.ewma = (1.0 - alpha) * state.ewma + alpha
            state.consecutive_failures += 1
            self._on_failure(state)

    def _maybe_probe(self) -> None:
        """Every ``probe_interval`` observations, probe one non-healthy
        server (rotating, so all suspects get coverage)."""
        if self._transport is None:
            return
        if self._observations % self.config.probe_interval != 0:
            return
        candidates = sorted(sid for sid, st in self._servers.items()
                            if st.status != HEALTHY)
        if not candidates:
            return
        # Seeded choice: a replayed run probes the same servers at the
        # same observation counts.
        self.probe(candidates[self._rng.randrange(len(candidates))])
