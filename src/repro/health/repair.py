"""Background repair: re-materialize a dead server's fragments.

After the stripe group reforms away from a dead member, every stripe
written *before* the reform is one failure away from data loss — its
redundancy is spent until the lost member is rebuilt somewhere. The
:class:`RepairDaemon` closes that window in the background:

1. **Enumerate** — one scatter lists every reachable server's fids for
   the client, one scatter fetches just the fragment *headers* (stripe
   descriptors), and the stripes with absent members fall out. The
   candidates are cross-checked with a ``broadcast_holds`` sweep so a
   fragment that survived on a restarted server is not rebuilt twice.
   Everything learned seeds the shared
   :class:`~repro.log.location.LocationCache`.
2. **Repair** — lost fragments are rebuilt in batches: each
   reconstruction scatter-fetches its stripe's survivors, then the
   batch's preallocates and stores go to the replacement as one
   overlapped scatter each, with a read-back verification scatter
   before anything counts as repaired (collisions fall back to the
   careful per-fragment
   :meth:`~repro.log.reconstruct.Reconstructor.rebuild_to_server`
   path).
3. **Throttle** — a repair-bandwidth budget converts repaired bytes
   into simulated seconds charged to the transport's deferred-time
   ledger, so on the simulated testbed repair traffic and foreground
   traffic contend in the resource model instead of by decree.
4. **Resume** — progress (verified-repaired fids) is exposed as a
   plain dict; a daemon constructed with a crashed predecessor's
   progress skips the work already proven done instead of restarting.

The daemon also coordinates with the cleaner: stripes queued for
repair are put on hold (cleaning a stripe mid-rebuild would race the
reconstruction), and released as each stripe returns to full strength.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import FragmentExistsError, SwarmError
from repro.log.fragment import HEADER_SIZE, Fragment, FragmentHeader
from repro.log.location import LocationCache
from repro.log.reconstruct import Reconstructor
from repro.rpc import messages as m
from repro.rpc.completion import scatter_call
from repro.rpc.retry import charge_delay
from repro.util.packing import unpack_fids

DEFAULT_THROTTLE_BYTES_PER_S = 32 << 20
"""Default repair-bandwidth budget (32 MB/s — a fraction of a modern
disk, so foreground traffic keeps headroom)."""


class RepairDaemon:
    """Rebuilds the fragments a dead server held onto a replacement.

    Drive it with :meth:`run` (discover + repair to completion) or, to
    interleave repair with foreground work the way a real background
    scrubber would, call :meth:`discover` once and then :meth:`step`
    repeatedly.
    """

    def __init__(self, transport, client_id: int, replacement,
                 principal: str = "",
                 locations: Optional[LocationCache] = None,
                 throttle_bytes_per_s: float = DEFAULT_THROTTLE_BYTES_PER_S,
                 batch_fragments: int = 4,
                 cleaner=None,
                 resume: Optional[Dict[str, object]] = None) -> None:
        if throttle_bytes_per_s <= 0:
            raise ValueError("throttle_bytes_per_s must be positive")
        if batch_fragments < 1:
            raise ValueError("batch_fragments must be >= 1")
        self.transport = transport
        self.client_id = client_id
        # One replacement server, or several: a multi-parity group that
        # lost two members needs its rebuilt fragments spread across
        # *distinct* spares (two members of one stripe on one server
        # would recreate a double-loss single point of failure).
        self.replacements: List[str] = ([replacement]
                                        if isinstance(replacement, str)
                                        else list(replacement))
        if not self.replacements:
            raise ValueError("repair needs at least one replacement server")
        if len(set(self.replacements)) != len(self.replacements):
            raise ValueError("duplicate replacement server")
        self.principal = principal or "client-%d" % client_id
        self.locations = locations if locations is not None else \
            LocationCache(transport, self.principal)
        self.reconstructor = Reconstructor(transport, self.principal,
                                           locations=self.locations)
        self.throttle_bytes_per_s = throttle_bytes_per_s
        self.batch_fragments = batch_fragments
        self.cleaner = cleaner
        self.pending: List[int] = []
        self.completed: Set[int] = set()
        if resume:
            self.completed.update(int(fid) for fid
                                  in resume.get("completed", ()))
        self._stripe_of: Dict[int, Tuple[int, int]] = {}
        self._held_bases: Set[int] = set()
        # Statistics.
        self.fragments_repaired = 0
        self.bytes_repaired = 0
        self.throttle_charged_s = 0.0
        self.resumed_skips = 0
        self.sweeps = 0

    # ------------------------------------------------------------------
    # Progress (resume after a crashed repair)
    # ------------------------------------------------------------------

    @property
    def replacement(self) -> str:
        """The first replacement server (single-spare compatibility)."""
        return self.replacements[0]

    def progress(self) -> Dict[str, object]:
        """Serializable snapshot; feed it to a successor's ``resume``."""
        return {
            "client_id": self.client_id,
            "replacement": self.replacement,
            "replacements": list(self.replacements),
            "completed": sorted(self.completed),
            "pending": sorted(self.pending),
        }

    @property
    def done(self) -> bool:
        """Whether every discovered lost fragment has been repaired."""
        return not self.pending

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------

    def discover(self, dead_server: Optional[str] = None) -> List[int]:
        """Find lost fragments; returns the newly queued fids.

        ``dead_server`` seeds the candidate list with the location
        cache's memory of what lived there (cheap, no network); the
        full inventory sweep then finds everything else, including
        losses the cache never knew about.
        """
        self.sweeps += 1
        suspects: Set[int] = set()
        if dead_server is not None:
            suspects.update(self.locations.fids_on(dead_server))
        present = self._list_present()
        for fid, server_id in present.items():
            self.locations.record(fid, server_id)
        shapes = self._stripe_shapes(present)
        missing: Set[int] = set(suspects)
        for base, width in shapes.items():
            for offset in range(width):
                fid = base + offset
                self._stripe_of[fid] = (base, width)
                if fid not in present:
                    missing.add(fid)
        missing -= set(present)
        # Cross-check with the broadcast sweep: a fragment that is
        # actually held somewhere (restarted server, concurrent repair)
        # needs no rebuild. Stale cached placements (they point at the
        # dead server) must be evicted first, or the cache would answer
        # the broadcast for the cluster.
        for fid in missing:
            self.locations.evict(fid)
        still_lost = sorted(missing - set(self.locations.locate_many(
            sorted(missing))))
        fresh = [fid for fid in still_lost
                 if fid not in self.completed and fid not in self.pending]
        for fid in list(fresh):
            if fid not in self._stripe_of:
                # No surviving sibling names this fid's stripe: nothing
                # to rebuild from (and nothing to rebuild — the cache
                # entry was for a fragment deleted everywhere).
                fresh.remove(fid)
        self.pending.extend(fresh)
        self._hold_for_repair(fresh)
        return fresh

    def _list_present(self) -> Dict[int, str]:
        """All the client's fids on reachable servers, one scatter."""
        request = m.ListFidsRequest(client_id=self.client_id,
                                    principal=self.principal)
        server_ids = self.transport.server_ids()
        futures = scatter_call(
            self.transport,
            [(server_id, request) for server_id in server_ids])
        present: Dict[int, str] = {}
        for server_id, future in zip(server_ids, futures):
            if not future.ok:
                if not isinstance(future.exception, SwarmError):
                    raise future.exception
                continue
            fids, _end = unpack_fids(future.value.payload)
            for fid in fids:
                present.setdefault(fid, server_id)
        return present

    def _stripe_shapes(self, present: Dict[int, str]) -> Dict[int, int]:
        """Stripe descriptors of every present fragment, headers only.

        One scatter of header-sized partial retrieves; a fragment whose
        header cannot be fetched or parsed is simply skipped (its
        stripe is still discovered through any surviving sibling).
        """
        plan = sorted(present.items())
        futures = scatter_call(
            self.transport,
            [(server_id, m.RetrieveRequest(fid=fid, offset=0,
                                           length=HEADER_SIZE,
                                           principal=self.principal))
             for fid, server_id in plan])
        shapes: Dict[int, int] = {}
        for (fid, _server_id), future in zip(plan, futures):
            if not future.ok:
                if not isinstance(future.exception, SwarmError):
                    raise future.exception
                continue
            try:
                header = FragmentHeader.decode(future.value.payload)
            except SwarmError:
                continue
            shapes[header.stripe_base_fid] = header.stripe_width
        return shapes

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------

    def step(self, max_fragments: Optional[int] = None) -> int:
        """Repair one batch of pending fragments; returns the count.

        Call repeatedly (interleaved with foreground work) until
        :attr:`done`. Each batch charges its bytes against the repair
        throttle before returning.
        """
        if not self.pending:
            return 0
        budget = self.batch_fragments if max_fragments is None \
            else max(1, max_fragments)
        batch, self.pending = self.pending[:budget], self.pending[budget:]
        repaired_bytes = 0
        repaired = 0
        for fid in batch:
            if fid in self.completed:
                self.resumed_skips += 1
                continue
            image = self._repair_one(fid)
            repaired_bytes += len(image)
            repaired += 1
            self.completed.add(fid)
            self._release_if_whole(fid)
        if repaired_bytes:
            seconds = repaired_bytes / self.throttle_bytes_per_s
            self.throttle_charged_s += seconds
            charge_delay(self.transport, seconds)
        self.fragments_repaired += repaired
        self.bytes_repaired += repaired_bytes
        return repaired

    def run(self, dead_server: Optional[str] = None) -> int:
        """Discover (if needed) and repair everything; returns count."""
        if dead_server is not None or not self.pending:
            self.discover(dead_server)
        total = 0
        while self.pending:
            total += self.step()
        return total

    def _repair_one(self, fid: int) -> bytes:
        """Rebuild one fragment onto its replacement, fully verified."""
        return self.reconstructor.rebuild_to_server(fid,
                                                    self._target_for(fid))

    def _target_for(self, fid: int) -> str:
        """The replacement server a lost fragment is rebuilt onto.

        A stripe's lost members are assigned round-robin by their rank
        in the stripe's sorted lost set (queued *or* already repaired,
        so a resumed daemon keeps spreading where its predecessor left
        off) — guaranteeing distinct targets for members of the same
        stripe whenever enough replacements were provided. Deterministic
        for replay: depends only on the discovered loss set.
        """
        if len(self.replacements) == 1:
            return self.replacements[0]
        shape = self._stripe_of.get(fid)
        if shape is None:
            return self.replacements[0]
        base, width = shape
        lost = sorted(f for f in range(base, base + width)
                      if f == fid or f in self.completed
                      or f in self.pending)
        return self.replacements[lost.index(fid) % len(self.replacements)]

    def repair_batch_scattered(self, fids: Iterable[int]) -> int:
        """Repair ``fids`` with batch-level scatters (fast path).

        Reconstructs every image first (each reconstruction already
        scatter-fetches its survivors), then sends the whole batch's
        preallocates and stores as one overlapped scatter each and
        verifies them with a read-back scatter. A fragment whose store
        collides with existing bytes falls back to the per-fragment
        :meth:`~repro.log.reconstruct.Reconstructor.rebuild_to_server`
        resolution. Returns the number repaired.
        """
        todo = [fid for fid in fids if fid not in self.completed]
        if not todo:
            return 0
        targets = {fid: self._target_for(fid) for fid in todo}
        images: Dict[int, bytes] = {}
        for fid in todo:
            images[fid] = bytes(self.reconstructor.fetch(fid))
        pre_futures = scatter_call(self.transport, [
            (targets[fid], m.PreallocateRequest(
                fid=fid, principal=self.principal)) for fid in todo])
        for future in pre_futures:
            if not future.ok and not isinstance(
                    future.exception, SwarmError):
                raise future.exception
        store_futures = scatter_call(self.transport, [
            (targets[fid], m.StoreRequest(
                fid=fid, data=images[fid], principal=self.principal,
                marked=Fragment.decode(images[fid]).header.marked))
            for fid in todo])
        collided = [fid for fid, future in zip(todo, store_futures)
                    if not future.ok and isinstance(
                        future.exception, FragmentExistsError)]
        for fid, future in zip(todo, store_futures):
            if future.ok or isinstance(future.exception,
                                       FragmentExistsError):
                continue
            raise future.exception
        repaired_bytes = 0
        for fid in todo:
            if fid in collided:
                # Existing bytes on the replacement: let the careful
                # path compare / replace / verify this one.
                self.reconstructor.rebuild_to_server(fid, targets[fid])
            else:
                self.reconstructor._verify_read_back(
                    fid, targets[fid], images[fid])
                self.locations.record(fid, targets[fid])
            repaired_bytes += len(images[fid])
            self.completed.add(fid)
            self.pending = [p for p in self.pending if p != fid]
            self._release_if_whole(fid)
        if repaired_bytes:
            seconds = repaired_bytes / self.throttle_bytes_per_s
            self.throttle_charged_s += seconds
            charge_delay(self.transport, seconds)
        self.fragments_repaired += len(todo)
        self.bytes_repaired += repaired_bytes
        return len(todo)

    # ------------------------------------------------------------------
    # Cleaner coordination
    # ------------------------------------------------------------------

    def _hold_for_repair(self, fids: Iterable[int]) -> None:
        bases = {self._stripe_of[fid][0] for fid in fids
                 if fid in self._stripe_of}
        bases -= self._held_bases
        if not bases:
            return
        self._held_bases.update(bases)
        if self.cleaner is not None:
            self.cleaner.hold_for_repair(bases)

    def _release_if_whole(self, fid: int) -> None:
        """Release a stripe's cleaner hold once all its members exist."""
        shape = self._stripe_of.get(fid)
        if shape is None:
            return
        base, width = shape
        if base not in self._held_bases:
            return
        outstanding = any(base + offset in self.pending
                          for offset in range(width))
        if outstanding:
            return
        self._held_bases.discard(base)
        if self.cleaner is not None:
            self.cleaner.release_repair_hold((base,))
