"""Checksum helpers used by the fragment format and storage backends."""

from __future__ import annotations

import zlib


def crc32_of(*chunks: bytes) -> int:
    """Return the CRC-32 of the concatenation of ``chunks``.

    The chunks are folded into a running CRC, so no intermediate copy of
    the concatenated data is made. The result is an unsigned 32-bit int,
    suitable for packing with ``struct`` format ``I``.
    """
    crc = 0
    for chunk in chunks:
        crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF
