"""FID bit layout — shared by the log layer and the storage server.

Lives in ``util`` (not in :mod:`repro.log`) because storage servers also
need to read the client-id bits out of FIDs (for per-client last-marked
queries) without importing the whole client-side log package.

The high 24 bits of a FID carry the writing client's id; the low 40
bits carry that client's fragment sequence number. Clients therefore
allocate globally unique FIDs with zero coordination, and fragments of
one stripe get *consecutive* FIDs — the property reconstruction's
neighbor search relies on.
"""

from __future__ import annotations

CLIENT_BITS = 24
SEQ_BITS = 40
SEQ_MASK = (1 << SEQ_BITS) - 1

FID_NONE = 0
"""Reserved FID meaning "no fragment"."""


def make_fid(client_id: int, seq: int) -> int:
    """Compose a FID from a client id and a per-client sequence number."""
    if not 0 <= client_id < (1 << CLIENT_BITS):
        raise ValueError("client_id out of range: %r" % client_id)
    if not 0 <= seq <= SEQ_MASK:
        raise ValueError("fragment sequence out of range: %r" % seq)
    return (client_id << SEQ_BITS) | seq


def fid_client(fid: int) -> int:
    """Extract the client id from a FID."""
    return fid >> SEQ_BITS


def fid_seq(fid: int) -> int:
    """Extract the per-client sequence number from a FID."""
    return fid & SEQ_MASK
