"""Monotonic identifier generation.

Swarm identifies fragments with 64-bit FIDs and needs various other
monotonically increasing ids (ARU ids, inode numbers, ...). A tiny
generator class keeps that logic in one place and makes tests
deterministic.
"""

from __future__ import annotations


class IdGenerator:
    """Produce monotonically increasing integer ids.

    Parameters
    ----------
    start:
        The first id that :meth:`next` will return.
    """

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def next(self) -> int:
        """Return the next id and advance the counter."""
        value = self._next
        self._next += 1
        return value

    def peek(self) -> int:
        """Return the id that the next call to :meth:`next` would return."""
        return self._next

    def advance_past(self, seen: int) -> None:
        """Ensure future ids are strictly greater than ``seen``.

        Used during crash recovery: after replaying the log, the generator
        must not re-issue ids that already appear in stored fragments.
        """
        if seen >= self._next:
            self._next = seen + 1
