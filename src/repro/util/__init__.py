"""Small shared utilities: checksums, binary packing, id generation."""

from repro.util.checksums import crc32_of
from repro.util.idgen import IdGenerator
from repro.util.packing import (
    pack_bytes,
    pack_str,
    unpack_bytes,
    unpack_str,
)

__all__ = [
    "crc32_of",
    "IdGenerator",
    "pack_bytes",
    "pack_str",
    "unpack_bytes",
    "unpack_str",
]
