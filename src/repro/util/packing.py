"""Length-prefixed binary packing helpers.

The fragment format and the RPC codec both need to serialize
variable-length byte strings and text. These helpers implement a single
convention — a 4-byte big-endian length prefix — so the two formats stay
consistent and the parsing code stays obvious.
"""

from __future__ import annotations

import struct
from typing import Tuple

_LEN = struct.Struct(">I")


def pack_bytes(data: bytes) -> bytes:
    """Serialize ``data`` as a 4-byte length prefix followed by the bytes.

    Accepts any bytes-like object (the zero-copy read path hands the
    codec ``memoryview`` payloads).
    """
    if not isinstance(data, (bytes, bytearray)):
        data = bytes(data)
    return _LEN.pack(len(data)) + data


def pack_fids(fids) -> bytes:
    """Serialize a sequence of FIDs: a 4-byte count then 8 bytes each.

    Shared by the batched ``holds`` reply and the ``ListFids`` reply so
    every fid-list payload on the wire has one format.
    """
    fids = tuple(fids)
    return struct.pack(">I%dQ" % len(fids), len(fids), *fids)


def unpack_fids(buf: bytes, offset: int = 0) -> Tuple[Tuple[int, ...], int]:
    """Inverse of :func:`pack_fids`; returns the fids and the end offset."""
    if offset + _LEN.size > len(buf):
        raise ValueError("truncated fid-list count")
    (count,) = _LEN.unpack_from(buf, offset)
    offset += _LEN.size
    end = offset + 8 * count
    if end > len(buf):
        raise ValueError("truncated fid list")
    return struct.unpack_from(">%dQ" % count, buf, offset), end


def unpack_bytes(buf: bytes, offset: int) -> Tuple[bytes, int]:
    """Read a length-prefixed byte string from ``buf`` at ``offset``.

    Returns the bytes and the offset just past them. Raises ``ValueError``
    if the buffer is truncated.
    """
    if offset + _LEN.size > len(buf):
        raise ValueError("truncated length prefix")
    (length,) = _LEN.unpack_from(buf, offset)
    offset += _LEN.size
    if offset + length > len(buf):
        raise ValueError("truncated payload")
    return bytes(buf[offset:offset + length]), offset + length


def pack_str(text: str) -> bytes:
    """Serialize ``text`` as length-prefixed UTF-8."""
    return pack_bytes(text.encode("utf-8"))


def unpack_str(buf: bytes, offset: int) -> Tuple[str, int]:
    """Read a length-prefixed UTF-8 string from ``buf`` at ``offset``."""
    raw, offset = unpack_bytes(buf, offset)
    return raw.decode("utf-8"), offset
