"""Benchmark-suite configuration.

Every benchmark runs a *deterministic* discrete-event simulation, so a
single round is exact — there is no run-to-run noise to average away;
benchmarks use ``benchmark.pedantic(..., rounds=1)``. The ``record``
fixture stashes each experiment's measured values (MB/s, seconds,
utilizations) in ``extra_info`` so the benchmark JSON carries the
paper-comparison numbers, not just wall time.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def record(benchmark):
    """Attach measured experiment values to the benchmark record."""

    def _record(**values) -> None:
        for key, value in values.items():
            if isinstance(value, float):
                value = round(value, 3)
            benchmark.extra_info[key] = value

    return _record
