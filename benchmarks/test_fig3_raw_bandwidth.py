"""Figure 3: aggregate raw write bandwidth.

Paper series (MB/s): 1 client 6.1 (1 server) rising slightly to 6.4
(8 servers); 2 clients reach 12.9 and 4 clients 19.3 at 8 servers; a
single server sustains 7.7 under multi-client load.

Each benchmark reproduces one curve of the figure (10,000 x 4 KB blocks
per client, flushed) and asserts the paper's shape.
"""

import pytest

from repro.workloads.microbench import run_write_bench

SERVER_POINTS = (1, 2, 4, 8)


def _curve(clients):
    return {servers: run_write_bench(clients, servers)
            for servers in SERVER_POINTS}


@pytest.mark.benchmark(group="fig3")
def test_fig3_one_client_curve(benchmark, record):
    results = benchmark.pedantic(lambda: _curve(1), rounds=1, iterations=1)
    rates = {servers: result.raw_mb_per_s
             for servers, result in results.items()}
    record(**{"raw_%ds" % s: r for s, r in rates.items()},
           paper_1s=6.1, paper_8s=6.4)
    # Shape: client-bound, nearly flat, inside the paper's band.
    assert 5.0 <= rates[1] <= 7.5
    assert max(rates.values()) / min(rates.values()) < 1.35


@pytest.mark.benchmark(group="fig3")
def test_fig3_two_client_curve(benchmark, record):
    results = benchmark.pedantic(lambda: _curve(2), rounds=1, iterations=1)
    rates = {servers: result.raw_mb_per_s
             for servers, result in results.items()}
    record(**{"raw_%ds" % s: r for s, r in rates.items()}, paper_8s=12.9)
    # One server saturates near the paper's 7.7 MB/s...
    assert 6.0 <= rates[1] <= 10.0
    # ...and with 8 servers both clients run at full single-client rate.
    assert 10.5 <= rates[8] <= 15.0


@pytest.mark.benchmark(group="fig3")
def test_fig3_four_client_curve(benchmark, record):
    results = benchmark.pedantic(lambda: _curve(4), rounds=1, iterations=1)
    rates = {servers: result.raw_mb_per_s
             for servers, result in results.items()}
    record(**{"raw_%ds" % s: r for s, r in rates.items()}, paper_8s=19.3)
    # Aggregate grows with servers and lands near the paper's 19.3.
    assert rates[8] > rates[1]
    assert 14.0 <= rates[8] <= 23.0


@pytest.mark.benchmark(group="fig3")
def test_fig3_server_sustained_rate(benchmark, record):
    """In-text: one server sustains 7.7 MB/s; its disk bound is 10.3."""
    from repro.bench.figures import run_server_sustained

    result = benchmark.pedantic(run_server_sustained, rounds=1, iterations=1)
    record(sustained=result.raw_mb_per_s,
           disk_bound=result.disk_upper_bound_mb_per_s,
           paper_sustained=7.7, paper_disk_bound=10.3)
    assert 6.5 <= result.raw_mb_per_s <= 9.5
    assert 9.8 <= result.disk_upper_bound_mb_per_s <= 11.0
    assert result.raw_mb_per_s < result.disk_upper_bound_mb_per_s
