"""Ablations of Swarm's design choices (see DESIGN.md §3, ABL-*).

Not paper figures — these quantify the design arguments the paper makes
qualitatively: fragment sizing, the parity tax, stripe-width
amortization, and write pipelining depth.
"""

import pytest

from repro.bench.ablations import (
    ablate_flow_control,
    ablate_fragment_size,
    ablate_parity,
    ablate_stripe_width,
)


@pytest.mark.benchmark(group="ablations")
def test_fragment_size_sweet_spot(benchmark, record):
    points = benchmark.pedantic(ablate_fragment_size, rounds=1, iterations=1)
    rates = {point.label: point.mb_per_s for point in points}
    record(**rates)
    # Tiny fragments drown in per-request overhead; huge ones serialize
    # badly behind the flow-control window. The useful band is flat-ish
    # in the middle — which is why 1 MB was a sane prototype choice.
    assert rates["fragment=64KB"] < max(rates.values())
    assert rates["fragment=4096KB"] < max(rates.values())


@pytest.mark.benchmark(group="ablations")
def test_parity_tax(benchmark, record):
    results = benchmark.pedantic(ablate_parity, rounds=1, iterations=1)
    record(**results)
    # Redundancy costs useful bandwidth relative to a no-parity log;
    # the 4-server striped configuration keeps it under ~40 %.
    assert results["with_parity_4s"] < results["no_parity_1s"]
    assert results["with_parity_4s"] > 0.55 * results["no_parity_1s"]


@pytest.mark.benchmark(group="ablations")
def test_stripe_width_amortization(benchmark, record):
    points = benchmark.pedantic(ablate_stripe_width, rounds=1, iterations=1)
    rates = [point.mb_per_s for point in points]
    record(**{point.label: point.mb_per_s for point in points})
    # Useful bandwidth is non-decreasing (within noise) with width.
    assert rates[-1] > 1.3 * rates[0]


@pytest.mark.benchmark(group="ablations")
def test_flow_control_window(benchmark, record):
    points = benchmark.pedantic(ablate_flow_control, rounds=1, iterations=1)
    rates = {int(point.value): point.mb_per_s for point in points}
    record(**{point.label: point.mb_per_s for point in points})
    # One outstanding fragment stalls the pipeline; a small window
    # recovers the loss, after which returns diminish (§2.1.2).
    assert rates[4] > rates[1]
    assert rates[8] < rates[4] * 1.15


@pytest.mark.benchmark(group="ablations")
def test_disjoint_stripe_groups(benchmark, record):
    """§2.1.2: disjoint groups minimize server contention (raw rate up)
    at the price of narrower stripes (parity fraction up)."""
    from repro.bench.ablations import ablate_disjoint_groups

    results = benchmark.pedantic(ablate_disjoint_groups, rounds=1,
                                 iterations=1)
    record(**results)
    # Less contention: raw bandwidth is at least as good disjoint.
    assert results["disjoint_raw"] >= 0.95 * results["shared_raw"]
    # Narrower stripes: useful bandwidth pays the parity tax.
    assert results["disjoint_useful"] < results["shared_useful"]


@pytest.mark.benchmark(group="ablations")
def test_server_fragment_cache(benchmark, record):
    """The server-side read fix §3.4 anticipates, quantified."""
    from repro.bench.ablations import ablate_server_cache

    results = benchmark.pedantic(ablate_server_cache, rounds=1,
                                 iterations=1)
    record(**results)
    assert results["cached"] < 0.9 * results["uncached"]
