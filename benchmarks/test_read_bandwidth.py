"""§3.4 in-text read measurement.

Paper: without server fragment caching or client prefetch, a Swarm
client reads 4 KB blocks at only 1.7 MB/s — one synchronous RPC and
one disk access per block.
"""

import pytest

from repro.bench.ablations import ablate_read_prefetch
from repro.bench.figures import run_read_bandwidth


@pytest.mark.benchmark(group="reads")
def test_uncached_read_bandwidth(benchmark, record):
    result = benchmark.pedantic(run_read_bandwidth, rounds=1, iterations=1)
    record(mb_per_s=result.mb_per_s, paper_mb_per_s=1.7)
    assert 0.8 <= result.mb_per_s <= 2.5


@pytest.mark.benchmark(group="reads")
def test_prefetch_fixes_reads(benchmark, record):
    """The paper's own prescription, quantified: whole-fragment
    prefetch turns 4 KB read RPCs into 1 MB transfers."""
    results = benchmark.pedantic(ablate_read_prefetch, rounds=1,
                                 iterations=1)
    record(per_block=results["per_block"], prefetch=results["prefetch"])
    assert results["prefetch"] > 1.4 * results["per_block"]
