"""Wall-clock hot-path benchmarks (``repro.bench.perf``).

These are *real-time* measurements of the reproduction's own Python hot
paths, unlike the simulated paper figures. Each test runs the harness's
smoke-sized workload once and records the derived metric; the last test
validates the full BENCH_PERF document shape end to end.
"""

from __future__ import annotations

from repro.bench.perf import (
    bench_broadcast_holds,
    bench_codec,
    bench_log_append,
    bench_parity,
    bench_reconstruction,
    bench_write_pipeline,
    run_all,
    validate_bench_schema,
)


def test_parity_throughput(benchmark, record):
    mb_s = benchmark.pedantic(
        lambda: bench_parity(fragment_size=1 << 18, repeats=8), rounds=1)
    record(parity_mb_s=mb_s)
    assert mb_s > 50  # zero-copy word-wise XOR, not per-byte Python

def test_log_append_throughput(benchmark, record):
    result = benchmark.pedantic(
        lambda: bench_log_append(total_bytes=4 << 20,
                                 fragment_size=1 << 18), rounds=1)
    record(**result)
    assert result["log_append_mb_s"] > 5
    assert result["stripe_close_ms"] >= 0

def test_codec_message_rate(benchmark, record):
    msgs_s = benchmark.pedantic(
        lambda: bench_codec(messages_per_kind=2_000), rounds=1)
    record(codec_msgs_s=msgs_s)
    assert msgs_s > 1_000

def test_reconstruction_latency(benchmark, record):
    ms = benchmark.pedantic(
        lambda: bench_reconstruction(stripes=2, fragment_size=1 << 18),
        rounds=1)
    record(reconstruction_ms=ms)
    assert ms < 10_000

def test_broadcast_holds_rpc_cost(benchmark, record):
    result = benchmark.pedantic(bench_broadcast_holds, rounds=1)
    record(**result)
    # Batched protocol: one RPC per server, never one per (fid, server).
    assert result["broadcast_holds_rpcs"] <= result["broadcast_holds_servers"]

def test_write_pipeline_overlap(benchmark, record):
    result = benchmark.pedantic(
        lambda: bench_write_pipeline(fragment_size=1 << 16, stripes=2),
        rounds=1)
    record(**result)
    # The tentpole property: a pipelined stripe close costs less
    # simulated time than the serial sum of its member stores.
    assert result["overlap_ratio"] < 1.0
    assert result["pipelined_flush_ms"] < result["serial_flush_ms"]
    # Group commit actually coalesced: more records than batches.
    assert result["records_coalesced"] > result["group_commit_batches"]

def test_smoke_document_schema(benchmark, record):
    doc = benchmark.pedantic(lambda: run_all(smoke=True), rounds=1)
    validate_bench_schema(doc)
    record(**doc["metrics"])
