"""Figure 5: Modified Andrew Benchmark, Sting vs ext2fs.

Paper: Sting completes in 9.4 s against ext2fs's 17.9 s (~1.9x) with a
single client and a single storage server; Sting runs at 93 % CPU
utilization while ext2fs is disk-bound at 57 %.
"""

import pytest

from repro.workloads.mab import run_mab_on_ext2, run_mab_on_sting


@pytest.mark.benchmark(group="fig5")
def test_fig5_sting_elapsed(benchmark, record):
    result = benchmark.pedantic(run_mab_on_sting, rounds=1, iterations=1)
    record(elapsed_s=result.elapsed_s, cpu_util=result.cpu_utilization,
           paper_elapsed_s=9.4, paper_util=0.93,
           **{"phase_%s" % k: v for k, v in result.phase_seconds.items()})
    assert 7.0 <= result.elapsed_s <= 12.0
    assert result.cpu_utilization > 0.85


@pytest.mark.benchmark(group="fig5")
def test_fig5_ext2_elapsed(benchmark, record):
    result = benchmark.pedantic(run_mab_on_ext2, rounds=1, iterations=1)
    record(elapsed_s=result.elapsed_s, cpu_util=result.cpu_utilization,
           paper_elapsed_s=17.9, paper_util=0.57,
           **{"phase_%s" % k: v for k, v in result.phase_seconds.items()})
    assert 13.0 <= result.elapsed_s <= 22.0
    assert result.cpu_utilization < 0.70


@pytest.mark.benchmark(group="fig5")
def test_fig5_speedup_and_utilization_contrast(benchmark, record):
    def run():
        return run_mab_on_sting(), run_mab_on_ext2()

    sting, ext2 = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = ext2.elapsed_s / sting.elapsed_s
    record(speedup=speedup, paper_speedup=1.90,
           sting_util=sting.cpu_utilization,
           ext2_util=ext2.cpu_utilization)
    assert 1.5 <= speedup <= 2.3
    assert sting.cpu_utilization - ext2.cpu_utilization > 0.25
