"""Figure 4: useful write throughput (application bytes only).

Paper series (MB/s): 1 client 3.0 at 2 servers rising to ~5.5 as the
parity cost amortizes; 4 clients 6.7 at 2 servers and 16.0 at 8 — the
latter within 17 % of the raw rate. Minimum configuration is two
servers (one data + one parity).
"""

import pytest

from repro.workloads.microbench import run_write_bench

SERVER_POINTS = (2, 4, 8)


def _curve(clients):
    return {servers: run_write_bench(clients, servers)
            for servers in SERVER_POINTS}


@pytest.mark.benchmark(group="fig4")
def test_fig4_one_client_curve(benchmark, record):
    results = benchmark.pedantic(lambda: _curve(1), rounds=1, iterations=1)
    rates = {servers: result.useful_mb_per_s
             for servers, result in results.items()}
    record(**{"useful_%ds" % s: r for s, r in rates.items()},
           paper_2s=3.0, paper_4s=5.5)
    # Paper band at 2 servers, monotone amortization with width.
    assert 2.5 <= rates[2] <= 4.0
    assert rates[2] < rates[4] <= rates[8] * 1.1
    assert rates[8] > 1.3 * rates[2]


@pytest.mark.benchmark(group="fig4")
def test_fig4_four_client_curve(benchmark, record):
    results = benchmark.pedantic(lambda: _curve(4), rounds=1, iterations=1)
    rates = {servers: result.useful_mb_per_s
             for servers, result in results.items()}
    record(**{"useful_%ds" % s: r for s, r in rates.items()},
           paper_2s=6.7, paper_8s=16.0)
    assert 5.5 <= rates[2] <= 10.0
    assert 12.0 <= rates[8] <= 19.0


@pytest.mark.benchmark(group="fig4")
def test_fig4_useful_approaches_raw_at_width(benchmark, record):
    """§3.4: at 4 clients / 8 servers useful is within ~17 % of raw
    (parity amortized over seven data fragments)."""
    result = benchmark.pedantic(lambda: run_write_bench(4, 8),
                                rounds=1, iterations=1)
    gap = 1 - result.useful_mb_per_s / result.raw_mb_per_s
    record(useful=result.useful_mb_per_s, raw=result.raw_mb_per_s,
           gap_fraction=gap, paper_gap=0.17)
    assert gap <= 0.25


@pytest.mark.benchmark(group="fig4")
def test_fig4_parity_fraction_drives_the_gap(benchmark, record):
    """The raw/useful gap shrinks as stripes widen — exactly the
    parity-amortization argument the paper makes for Figure 4."""

    def run():
        return {servers: run_write_bench(1, servers)
                for servers in (2, 8)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    gap2 = 1 - results[2].useful_mb_per_s / results[2].raw_mb_per_s
    gap8 = 1 - results[8].useful_mb_per_s / results[8].raw_mb_per_s
    record(gap_2s=gap2, gap_8s=gap8)
    assert gap2 > 0.4          # half the bytes are parity at width 2
    assert gap8 < gap2 - 0.2   # far less at width 8
